//===- workload/CorpusDaikon.cpp - Daikon-style benchmark -----------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature Daikon: detects likely invariants (non-zero, positive,
/// even, bounded, small) over two program points' samples, then an
/// XorVisitor reports invariants holding at exactly one point. The §5.2
/// regression is reproduced structurally: the new version changes *two*
/// decision methods (shouldAdd1 and shouldAdd2, mirroring
/// daikon.diff.XorVisitor.shouldAddInv1/2) from >= to > threshold
/// comparisons. The regressing input drives an invariant with confidence
/// exactly at shouldAdd2's threshold, so only that change manifests in the
/// trace; shouldAdd1's change is dynamically invisible — by construction
/// one ground-truth cause cannot be found (the paper's Daikon false
/// negative).
///
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"

using namespace rprism;

namespace {

/// Shared program body: everything except XorVisitor and Reporter, which
/// differ between versions.
const char *DaikonCommon = R"PROG(
class Log {
  Int count;
  Log() { this.count = 0; }
  Unit addMsg(Str m) {
    this.count = this.count + 1;
    return unit;
  }
}

class IntNode {
  Int value;
  IntNode next;
  IntNode(Int v) { this.value = v; this.next = null; }
}

class VarSamples {
  IntNode head;
  Int count;
  VarSamples() { this.head = null; this.count = 0; }
  Unit add(Int v) {
    var n = new IntNode(v);
    n.next = this.head;
    this.head = n;
    this.count = this.count + 1;
    return unit;
  }
}

class Tokenizer {
  Str text;
  Int pos;
  Tokenizer(Str text) { this.text = text; this.pos = 0; }
  Bool hasMore() { return this.pos < len(this.text); }
  Int nextValue() {
    var chunk = "";
    var going = true;
    while (going && this.pos < len(this.text)) {
      var c = substr(this.text, this.pos, 1);
      this.pos = this.pos + 1;
      if (c == ",") {
        going = false;
      } else {
        chunk = chunk + c;
      }
    }
    return parseInt(chunk);
  }
}

class Invariant {
  Str name;
  Int hits;
  Int total;
  Invariant(Str name) { this.name = name; this.hits = 0; this.total = 0; }
  Bool holds(Int v) { return true; }
  Unit feed(Int v) {
    this.total = this.total + 1;
    if (this.holds(v)) {
      this.hits = this.hits + 1;
    }
    return unit;
  }
  Int confidence() {
    if (this.total == 0) { return 0; }
    return this.hits * 100 / this.total;
  }
}

class NonZeroInv extends Invariant {
  NonZeroInv() { super("nonzero"); }
  Bool holds(Int v) { return !(v == 0); }
}

class PositiveInv extends Invariant {
  PositiveInv() { super("positive"); }
  Bool holds(Int v) { return v > 0; }
}

class EvenInv extends Invariant {
  EvenInv() { super("even"); }
  Bool holds(Int v) {
    var r = v % 2;
    return r == 0;
  }
}

class BoundedInv extends Invariant {
  Int lo;
  Int hi;
  BoundedInv(Int lo, Int hi) {
    super("bounded");
    this.lo = lo;
    this.hi = hi;
  }
  Bool holds(Int v) { return v >= this.lo && v <= this.hi; }
}

class SmallInv extends Invariant {
  SmallInv() { super("small"); }
  Bool holds(Int v) {
    var m = v;
    if (m < 0) { m = -m; }
    return m < 50;
  }
}

class InvNode {
  Invariant inv;
  InvNode next;
  InvNode(Invariant inv) { this.inv = inv; this.next = null; }
}

class InvariantSet {
  InvNode head;
  Int size;
  InvariantSet() { this.head = null; this.size = 0; }
  Unit add(Invariant inv) {
    var n = new InvNode(inv);
    n.next = this.head;
    this.head = n;
    this.size = this.size + 1;
    return unit;
  }
  Bool containsName(Str name) {
    var cur = this.head;
    while (!(cur == null)) {
      if (cur.inv.name == name) { return true; }
      cur = cur.next;
    }
    return false;
  }
}

class PptTopLevel {
  Str name;
  VarSamples samples;
  InvariantSet invs;
  Log log;
  PptTopLevel(Str name, Log log) {
    this.name = name;
    this.samples = new VarSamples();
    this.invs = new InvariantSet();
    this.log = log;
  }
  Unit record(Int v) {
    this.samples.add(v);
    return unit;
  }
  Unit feedAll(Invariant inv) {
    var cur = this.samples.head;
    while (!(cur == null)) {
      inv.feed(cur.value);
      cur = cur.next;
    }
    return unit;
  }
  Unit detect() {
    this.log.addMsg("detect start");
    var cands = new InvariantSet();
    cands.add(new NonZeroInv());
    cands.add(new PositiveInv());
    cands.add(new EvenInv());
    cands.add(new BoundedInv(0, 100));
    cands.add(new SmallInv());
    var cur = cands.head;
    while (!(cur == null)) {
      this.feedAll(cur.inv);
      if (cur.inv.confidence() >= 60) {
        this.invs.add(cur.inv);
      }
      cur = cur.next;
    }
    this.log.addMsg("detect done");
    return unit;
  }
}
)PROG";

const char *DaikonOrigTail = R"PROG(
class XorVisitor {
  InvariantSet result;
  Log log;
  XorVisitor(Log log) { this.result = new InvariantSet(); this.log = log; }
  Bool shouldAdd1(Invariant inv) { return inv.confidence() >= 70; }
  Bool shouldAdd2(Invariant inv) { return inv.confidence() >= 65; }
  Unit visit(PptTopLevel p1, PptTopLevel p2) {
    this.log.addMsg("xor visit");
    var cur = p1.invs.head;
    while (!(cur == null)) {
      if (!p2.invs.containsName(cur.inv.name)) {
        if (this.shouldAdd1(cur.inv)) {
          this.result.add(cur.inv);
        }
      }
      cur = cur.next;
    }
    cur = p2.invs.head;
    while (!(cur == null)) {
      if (!p1.invs.containsName(cur.inv.name)) {
        if (this.shouldAdd2(cur.inv)) {
          this.result.add(cur.inv);
        }
      }
      cur = cur.next;
    }
    return unit;
  }
}

class Reporter {
  Unit report(InvariantSet s) {
    var cur = s.head;
    while (!(cur == null)) {
      print(cur.inv.name + " conf=" + strOfInt(cur.inv.confidence()));
      cur = cur.next;
    }
    print(s.size);
    return unit;
  }
}

main {
  var log = new Log();
  var p1 = new PptTopLevel("ppt1", log);
  var p2 = new PptTopLevel("ppt2", log);
  var t1 = new Tokenizer(input(0));
  while (t1.hasMore()) { p1.record(t1.nextValue()); }
  var t2 = new Tokenizer(input(1));
  while (t2.hasMore()) { p2.record(t2.nextValue()); }
  p1.detect();
  p2.detect();
  var xor = new XorVisitor(log);
  xor.visit(p1, p2);
  var rep = new Reporter();
  rep.report(xor.result);
}
)PROG";

const char *DaikonNewTail = R"PROG(
class Stats {
  Int visits;
  Stats() { this.visits = 0; }
  Unit bump() { this.visits = this.visits + 1; return unit; }
}

class XorVisitor {
  InvariantSet result;
  Log log;
  Stats stats;
  XorVisitor(Log log) {
    this.result = new InvariantSet();
    this.log = log;
    this.stats = new Stats();
  }
  Bool shouldAdd1(Invariant inv) { return inv.confidence() > 70; }
  Bool shouldAdd2(Invariant inv) { return inv.confidence() > 65; }
  Unit visit(PptTopLevel p1, PptTopLevel p2) {
    this.log.addMsg("xor visit");
    this.stats.bump();
    var cur = p1.invs.head;
    while (!(cur == null)) {
      if (!p2.invs.containsName(cur.inv.name)) {
        if (this.shouldAdd1(cur.inv)) {
          this.result.add(cur.inv);
        }
      }
      cur = cur.next;
    }
    cur = p2.invs.head;
    while (!(cur == null)) {
      if (!p1.invs.containsName(cur.inv.name)) {
        if (this.shouldAdd2(cur.inv)) {
          this.result.add(cur.inv);
        }
      }
      cur = cur.next;
    }
    return unit;
  }
}

class Reporter {
  Unit report(InvariantSet s) {
    var cur = s.head;
    while (!(cur == null)) {
      print(cur.inv.name + " conf=" + strOfInt(cur.inv.confidence()));
      cur = cur.next;
    }
    print(s.size);
    return unit;
  }
}

main {
  var log = new Log();
  log.addMsg("daikon v2");
  var p1 = new PptTopLevel("ppt1", log);
  var p2 = new PptTopLevel("ppt2", log);
  var t1 = new Tokenizer(input(0));
  while (t1.hasMore()) { p1.record(t1.nextValue()); }
  var t2 = new Tokenizer(input(1));
  while (t2.hasMore()) { p2.record(t2.nextValue()); }
  p1.detect();
  p2.detect();
  var xor = new XorVisitor(log);
  xor.visit(p1, p2);
  var rep = new Reporter();
  rep.report(xor.result);
}
)PROG";

} // namespace

/// Builds the daikon benchmark case; called from benchmarkCorpus().
BenchmarkCase makeDaikonCase() {
  BenchmarkCase Case;
  Case.Name = "daikon";
  Case.Description =
      "invariant detector; regression in XorVisitor.shouldAdd1/shouldAdd2 "
      "(>= changed to >); only shouldAdd2 manifests dynamically";
  Case.OrigSource = std::string(DaikonCommon) + DaikonOrigTail;
  Case.NewSource = std::string(DaikonCommon) + DaikonNewTail;

  // ppt1: all odd, positive, < 50 — even-confidence 0, positive 100.
  const char *Ppt1 =
      "1,3,5,7,9,11,13,15,17,19,21,23,25,27,29,31,33,35,37,39";
  // Regressing ppt2: 13 of 20 even (confidence exactly 65 — shouldAdd2's
  // boundary) and 9 non-positive values (positive confidence 55 < 60, so
  // "positive" stays ppt1-only).
  const char *Ppt2Regr =
      "2,4,6,8,10,12,-2,-4,-6,-8,14,16,18,1,3,-5,-7,-9,-11,13";
  // Non-regressing ppt2: 15 of 20 even (confidence 75 — away from both
  // thresholds), same flavor of data.
  const char *Ppt2Ok =
      "2,4,6,8,10,12,-2,-4,-6,-8,14,16,18,20,22,1,3,-5,-7,-9";

  Case.RegrRun.Inputs = {Ppt1, Ppt2Regr};
  Case.RegrRun.TraceName = "daikon";
  Case.OkRun.Inputs = {Ppt1, Ppt2Ok};
  Case.OkRun.TraceName = "daikon";

  // Exclude the logger and the (new-version-only) stats counter, and keep
  // their monotone state out of containing objects' representations —
  // the paper's pointcut exclusion + default-identity rule (§5).
  for (RunOptions *Run : {&Case.RegrRun, &Case.OkRun}) {
    Run->Tracing.ExcludeClasses.insert("Log");
    Run->Tracing.ExcludeClasses.insert("Stats");
    Run->Tracing.NoReprClasses.insert("Log");
    Run->Tracing.NoReprClasses.insert("Stats");
  }

  GroundTruthChange Add2;
  Add2.Description = "XorVisitor.shouldAdd2 threshold >=65 changed to >65";
  Add2.RegressionRelated = true;
  Add2.Methods = {"XorVisitor.shouldAdd2"};
  Case.Truth.push_back(Add2);

  GroundTruthChange Add1;
  Add1.Description = "XorVisitor.shouldAdd1 threshold >=70 changed to >70 "
                     "(dynamically invisible for these inputs)";
  Add1.RegressionRelated = true;
  Add1.Methods = {"XorVisitor.shouldAdd1"};
  Case.Truth.push_back(Add1);

  GroundTruthChange Effect;
  Effect.Description = "downstream effect: the xor result set and its "
                       "report change";
  Effect.EffectRelated = true;
  Effect.Methods = {"XorVisitor.visit", "InvariantSet.add",
                    "Reporter.report"};
  Case.Truth.push_back(Effect);

  GroundTruthChange Benign;
  Benign.Description = "Stats counter added; v2 startup log message";
  Benign.RegressionRelated = false;
  Benign.Methods = {"Stats.bump", "Stats.<init>"};
  Case.Truth.push_back(Benign);
  return Case;
}
