//===- workload/Generator.cpp ---------------------------------------------===//

#include "workload/Generator.h"

#include "support/Rng.h"

#include <sstream>

using namespace rprism;

std::string rprism::generateProgram(const GeneratorOptions &Options) {
  Rng R(Options.Seed);
  std::ostringstream OS;

  unsigned NumClasses = Options.NumClasses == 0 ? 1 : Options.NumClasses;
  // Which class/constant gets perturbed (stable across the pair as long as
  // Seed and NumClasses match).
  unsigned PerturbClass = Options.Perturb == 0
                              ? NumClasses
                              : Options.Perturb % NumClasses;

  for (unsigned C = 0; C != NumClasses; ++C) {
    // Per-class deterministic shape parameters.
    int64_t MulA = static_cast<int64_t>(R.nextInRange(2, 9));
    int64_t AddB = static_cast<int64_t>(R.nextInRange(1, 50));
    int64_t ModC = static_cast<int64_t>(R.nextInRange(11, 97));
    if (C == PerturbClass)
      AddB += 1000; // The version-pair difference.

    OS << "class Worker" << C << " {\n"
       << "  Int acc;\n"
       << "  Int steps;\n"
       << "  Worker" << C << "(Int seed) { this.acc = seed; this.steps = 0; }\n"
       << "  Int step(Int x) {\n"
       << "    this.steps = this.steps + 1;\n"
       << "    this.acc = (this.acc * " << MulA << " + x + " << AddB
       << ") % " << ModC << ";\n"
       << "    return this.acc;\n"
       << "  }\n"
       << "  Int drain() {\n"
       << "    var t = this.acc;\n"
       << "    this.acc = 0;\n"
       << "    return t;\n"
       << "  }\n"
       << "}\n\n";
  }

  // Runner classes, one per extra thread: each drives a private set of
  // worker instances through the same loop main runs. Distinct classes
  // (distinct entry methods) keep the thread-view correlation unambiguous.
  unsigned NumThreads = Options.NumThreads == 0 ? 1 : Options.NumThreads;
  for (unsigned T = 1; T < NumThreads; ++T) {
    OS << "class Runner" << T << " {\n"
       << "  Int id;\n"
       << "  Runner" << T << "(Int id) { this.id = id; }\n"
       << "  Int run(Int iters) {\n";
    for (unsigned C = 0; C != NumClasses; ++C)
      OS << "    var w" << C << " = new Worker" << C << "("
         << (T * 100 + C + 1) << ");\n";
    OS << "    var total = 0;\n"
       << "    var i = 0;\n"
       << "    while (i < iters) {\n";
    for (unsigned C = 0; C != NumClasses; ++C)
      OS << "      total = total + w" << C << ".step(i + this.id);\n";
    OS << "      i = i + 1;\n"
       << "    }\n"
       << "    return total;\n"
       << "  }\n"
       << "}\n\n";
  }

  OS << "main {\n";
  for (unsigned T = 1; T < NumThreads; ++T)
    OS << "  spawn new Runner" << T << "(" << T << ").run("
       << Options.OuterIters << ");\n";
  for (unsigned C = 0; C != NumClasses; ++C)
    OS << "  var w" << C << " = new Worker" << C << "(" << (C + 1) << ");\n";
  OS << "  var total = 0;\n"
     << "  var i = 0;\n"
     << "  while (i < " << Options.OuterIters << ") {\n";
  for (unsigned C = 0; C != NumClasses; ++C)
    OS << "    total = total + w" << C << ".step(i);\n";
  OS << "    i = i + 1;\n"
     << "  }\n";

  if (Options.ReorderBlock) {
    // Two independent drain blocks whose order differs from the baseline
    // rendering (the baseline emits 0..N-1; this emits the pair swapped).
    OS << "  total = total + w" << (NumClasses > 1 ? 1 : 0) << ".drain();\n";
    OS << "  total = total + w0.drain();\n";
  } else {
    OS << "  total = total + w0.drain();\n";
    if (NumClasses > 1)
      OS << "  total = total + w1.drain();\n";
  }

  OS << "  print(total);\n"
     << "}\n";
  return OS.str();
}

unsigned rprism::approxEntriesPerIteration(const GeneratorOptions &Options) {
  // Each Worker.step: call + return + 2 gets + 2 sets + 2 gets = ~8 entries.
  // Every thread (main plus each runner) executes the loop OuterIters
  // times over its own workers.
  unsigned NumClasses = Options.NumClasses == 0 ? 1 : Options.NumClasses;
  unsigned NumThreads = Options.NumThreads == 0 ? 1 : Options.NumThreads;
  return NumClasses * 9 * NumThreads;
}
