//===- workload/Corpus.h - Subject programs for the evaluation ------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The subject-program corpus. The paper evaluates on real Java systems
/// (Daikon, Xalan, Derby, and iBugs/Rhino); this reproduction substitutes
/// core-language programs engineered to exhibit the same *trace shapes* the
/// evaluation depends on (see DESIGN.md):
///
///   motivating   — the MyFaces-style character-filter regression of Fig. 1
///   daikon       — invariant detector; regression in two visitor methods,
///                  many small classes
///   xalan-1725   — two-phase stylesheet compiler; cause in code
///                  generation, effect at execution of the generated code
///   xalan-1802   — namespace module completely re-architected between
///                  versions (heavy churn), corner-case regression
///   derby-1633   — multithreaded query engine; regression makes the new
///                  version fail during query compilation
///   rhino        — base program for the §5.1 injected-regression study
///                  (an expression-language interpreter, mirroring Rhino's
///                  parse-then-interpret structure)
///
/// Each case carries the paired sources, regressing and non-regressing
/// test inputs, tracing options, and documented ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_WORKLOAD_CORPUS_H
#define RPRISM_WORKLOAD_CORPUS_H

#include "analysis/Regression.h"
#include "runtime/Vm.h"
#include "support/Expected.h"

#include <string>
#include <vector>

namespace rprism {

/// One benchmark case: a version pair plus its test inputs and truth.
struct BenchmarkCase {
  std::string Name;
  std::string Description;
  std::string OrigSource;
  std::string NewSource;
  RunOptions RegrRun; ///< Inputs reproducing the regression.
  RunOptions OkRun;   ///< Similar non-regressing inputs.
  std::vector<GroundTruthChange> Truth;

  /// Source lines of the two versions combined (Table 1's LOC column).
  unsigned linesOfCode() const;
};

/// The Fig. 1 motivating example.
BenchmarkCase motivatingCase();

/// The SOAP-169-style case of footnote 5: the same
/// state-clobbered-early/manifests-late pattern in a SOAP envelope
/// encoder. Not part of the paper's tables; used by tests and examples to
/// show the analysis generalizes across the pattern.
BenchmarkCase soapCase();

/// The four Table 1 benchmark cases, in table order:
/// daikon, xalan-1725, xalan-1802, derby-1633.
std::vector<BenchmarkCase> benchmarkCorpus();

/// The base program for the §5.1 quantitative study: an expression-language
/// interpreter (tokenizer, parser, evaluator — Rhino's structure in
/// miniature). Inputs: input(0) is the program text to interpret.
std::string rhinoBaseSource();

/// The same front end lowering to a linear instruction list executed by a
/// stack machine — Rhino's "compiled mode". The paper's data uses the
/// interpretive mode "but RPRISM runs equally well with the compiled
/// mode"; tests verify that claim on this reproduction.
std::string rhinoCompiledSource();

/// A regressing/ok input pair for the rhino base program, varied by \p
/// Index so injected-regression cases exercise different program paths.
void rhinoInputs(unsigned Index, RunOptions &RegrRun, RunOptions &OkRun);
unsigned numRhinoInputs();

//===----------------------------------------------------------------------===//
// Case preparation (the tracing step of the pipeline)
//===----------------------------------------------------------------------===//

/// The four traces of §4's algorithm plus run metadata.
struct PreparedCase {
  std::shared_ptr<StringInterner> Strings;
  Trace OrigOk;
  Trace OrigRegr;
  Trace NewOk;
  Trace NewRegr;
  std::string OrigOkOut, OrigRegrOut, NewOkOut, NewRegrOut;
  double TracingSeconds = 0;

  /// True when the case exhibits a regression as defined in §1: same input,
  /// correct before, incorrect after — and the ok input agrees on both.
  bool exhibitsRegression() const {
    return OrigRegrOut != NewRegrOut && OrigOkOut == NewOkOut;
  }

  RegressionInputs inputs() const {
    return {&OrigOk, &OrigRegr, &NewOk, &NewRegr};
  }
};

/// Compiles both versions (sharing one interner) and runs the four
/// version x input combinations.
Expected<PreparedCase> prepareCase(const BenchmarkCase &Case);

} // namespace rprism

#endif // RPRISM_WORKLOAD_CORPUS_H
