//===- workload/CorpusSoap.cpp - SOAP-169-style extra case ----------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's footnote 5 points at SOAP-169 as a second instance of the
/// motivating pattern: "a piece of code incorrectly alters some dynamic
/// state in the program, with the manifestation of the error appearing,
/// only in certain cases, at some later point in the execution". This
/// case reproduces that shape in a SOAP-ish envelope encoder: the new
/// version's extracted TypeRegistry clobbers the encoding default set
/// during setup, and the damage shows only when a payload of the affected
/// kind ("vector") is serialized much later.
///
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"

using namespace rprism;

namespace {

const char *SoapCommon = R"PROG(
class Config {
  Str encoding;
  Int strict;
  Config() { this.encoding = "typed"; this.strict = 1; }
}

class Part {
  Str kind;
  Str payload;
  Part next;
  Part(Str kind, Str payload) {
    this.kind = kind;
    this.payload = payload;
    this.next = null;
  }
}

class Message {
  Part head;
  Part tail;
  Int size;
  Message() { this.head = null; this.tail = null; this.size = 0; }
  Unit add(Part p) {
    if (this.tail == null) {
      this.head = p;
    } else {
      this.tail.next = p;
    }
    this.tail = p;
    this.size = this.size + 1;
    return unit;
  }
}

class PartReader {
  Str text;
  Int pos;
  PartReader(Str text) { this.text = text; this.pos = 0; }
  Bool hasMore() { return this.pos < len(this.text); }
  Str readUntil(Str stop) {
    var chunk = "";
    var going = true;
    while (going && this.pos < len(this.text)) {
      var c = substr(this.text, this.pos, 1);
      this.pos = this.pos + 1;
      if (c == stop) { going = false; } else { chunk = chunk + c; }
    }
    return chunk;
  }
}

class EnvelopeWriter {
  Config cfg;
  EnvelopeWriter(Config cfg) { this.cfg = cfg; }
  Str writePart(Part p) {
    var out = "<" + p.kind;
    if (this.cfg.encoding == "typed") {
      if (p.kind == "vector") {
        out = out + " xsi:type='soapenc:Array'";
      }
      if (p.kind == "string") {
        out = out + " xsi:type='xsd:string'";
      }
    }
    out = out + ">" + p.payload + "</" + p.kind + ">";
    return out;
  }
  Unit writeAll(Message m) {
    var cur = m.head;
    while (cur != null) {
      print(this.writePart(cur));
      cur = cur.next;
    }
    return unit;
  }
}
)PROG";

const char *SoapOrigTail = R"PROG(
class Serializer {
  Config cfg;
  Serializer(Config cfg) { this.cfg = cfg; }
  Unit setup() {
    this.cfg.encoding = "typed";
    return unit;
  }
}

main {
  var cfg = new Config();
  var ser = new Serializer(cfg);
  ser.setup();
  var msg = new Message();
  var reader = new PartReader(input(0));
  while (reader.hasMore()) {
    var kind = reader.readUntil(":");
    var payload = reader.readUntil(";");
    msg.add(new Part(kind, payload));
  }
  var writer = new EnvelopeWriter(cfg);
  writer.writeAll(msg);
  print(msg.size);
}
)PROG";

const char *SoapNewTail = R"PROG(
class TypeRegistry {
  Config cfg;
  Int mappings;
  TypeRegistry(Config cfg) {
    this.cfg = cfg;
    this.mappings = 0;
    // Refactoring bug: registering the built-in mappings resets the
    // encoding mode that setup() established (SOAP-169's shape: dynamic
    // state clobbered early, manifestation much later and only for
    // certain payload kinds).
    this.cfg.encoding = "literal";
  }
  Unit register(Str kind) {
    this.mappings = this.mappings + 1;
    return unit;
  }
}

class Serializer {
  Config cfg;
  TypeRegistry types;
  Serializer(Config cfg) { this.cfg = cfg; this.types = null; }
  Unit setup() {
    this.cfg.encoding = "typed";
    this.types = new TypeRegistry(this.cfg);
    this.types.register("vector");
    this.types.register("string");
    return unit;
  }
}

main {
  var cfg = new Config();
  var ser = new Serializer(cfg);
  ser.setup();
  var msg = new Message();
  var reader = new PartReader(input(0));
  while (reader.hasMore()) {
    var kind = reader.readUntil(":");
    var payload = reader.readUntil(";");
    msg.add(new Part(kind, payload));
  }
  var writer = new EnvelopeWriter(cfg);
  writer.writeAll(msg);
  print(msg.size);
}
)PROG";

} // namespace

BenchmarkCase rprism::soapCase() {
  BenchmarkCase Case;
  Case.Name = "soap-169";
  Case.Description =
      "SOAP envelope encoder (footnote 5's second instance of the "
      "motivating pattern): the new TypeRegistry clobbers the encoding "
      "mode; only typed payloads (vector/string) render differently";
  Case.OrigSource = std::string(SoapCommon) + SoapOrigTail;
  Case.NewSource = std::string(SoapCommon) + SoapNewTail;

  // Regressing input carries typed payloads — their xsi:type attributes
  // disappear in the new version.
  Case.RegrRun.Inputs = {
      "string:hello;vector:a,b,c;int:42;string:world;vector:x,y;"};
  Case.RegrRun.TraceName = "soap-169";
  // The ok input has only untyped payloads: both versions emit identical
  // envelopes even though the encoding mode differs internally.
  Case.OkRun.Inputs = {"int:1;int:2;float:3.5;int:4;int:5;"};
  Case.OkRun.TraceName = "soap-169";

  GroundTruthChange Bug;
  Bug.Description = "TypeRegistry constructor resets cfg.encoding to "
                    "'literal' after setup() chose 'typed'";
  Bug.RegressionRelated = true;
  Bug.Methods = {"TypeRegistry.<init>", "Serializer.setup"};
  Case.Truth.push_back(Bug);

  GroundTruthChange Effect;
  Effect.Description = "downstream effect: typed payloads render without "
                       "xsi:type attributes";
  Effect.EffectRelated = true;
  Effect.Methods = {"EnvelopeWriter.writePart", "EnvelopeWriter.writeAll"};
  Case.Truth.push_back(Effect);

  GroundTruthChange Benign;
  Benign.Description = "type mapping registration calls";
  Benign.RegressionRelated = false;
  Benign.Methods = {"TypeRegistry.register"};
  Case.Truth.push_back(Benign);
  return Case;
}
