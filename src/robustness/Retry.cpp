//===- robustness/Retry.cpp - Configurable process-wide I/O retry policy --===//

#include "robustness/Retry.h"

#include <atomic>
#include <cstdint>

using namespace rprism;

namespace {

// Attempts in the high half, backoff micros in the low half: one atomic
// load yields a coherent policy with no locking on the I/O hot path.
constexpr uint64_t pack(const RetryPolicy &P) {
  return (uint64_t{P.MaxAttempts} << 32) | P.BackoffMicros;
}

std::atomic<uint64_t> PackedIoPolicy{pack(RetryPolicy{})};

/// Parses a full decimal uint32 from \p Text (no sign, no trailing junk).
bool parseU32(const std::string &Text, uint32_t &Out) {
  if (Text.empty() || Text.size() > 10)
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (C - '0');
  }
  if (V > 0xffffffffu)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

} // namespace

RetryPolicy rprism::ioRetryPolicy() {
  uint64_t Packed = PackedIoPolicy.load(std::memory_order_relaxed);
  RetryPolicy P;
  P.MaxAttempts = static_cast<unsigned>(Packed >> 32);
  P.BackoffMicros = static_cast<unsigned>(Packed & 0xffffffffu);
  return P;
}

void rprism::setIoRetryPolicy(const RetryPolicy &Policy) {
  PackedIoPolicy.store(pack(Policy), std::memory_order_relaxed);
}

bool rprism::parseRetryPolicy(const std::string &Spec, RetryPolicy &Out,
                              std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  if (Spec.empty())
    return Fail("empty retry-policy spec");

  RetryPolicy Parsed = Out; // Unmentioned keys keep the caller's values.
  bool SawAttempts = false;
  bool SawBase = false;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Field = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;

    size_t Eq = Field.find('=');
    if (Eq == std::string::npos)
      return Fail("retry-policy field '" + Field + "' is not key=value");
    std::string Key = Field.substr(0, Eq);
    std::string Value = Field.substr(Eq + 1);
    uint32_t Num = 0;
    if (!parseU32(Value, Num))
      return Fail("retry-policy " + Key + " value '" + Value +
                  "' is not a decimal integer");
    if (Key == "attempts") {
      if (SawAttempts)
        return Fail("duplicate retry-policy key 'attempts'");
      if (Num == 0)
        return Fail("retry-policy attempts must be >= 1");
      Parsed.MaxAttempts = Num;
      SawAttempts = true;
    } else if (Key == "base_ms") {
      if (SawBase)
        return Fail("duplicate retry-policy key 'base_ms'");
      if (Num > 0xffffffffu / 1000)
        return Fail("retry-policy base_ms too large");
      Parsed.BackoffMicros = Num * 1000;
      SawBase = true;
    } else {
      return Fail("unknown retry-policy key '" + Key + "'");
    }
    if (Comma == Spec.size())
      break;
  }

  Out = Parsed;
  return true;
}
