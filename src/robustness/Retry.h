//===- robustness/Retry.h - Bounded retry with exponential backoff --------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One rung of the degradation ladder (docs/ROBUSTNESS.md): transient I/O
/// errors get a small, bounded number of retries with exponential backoff
/// before the operation fails for real. Header-only and dependency-free so
/// any layer can use it; callers report retries to their own counters via
/// the NotifyRetry callback (the trace loader counts `robust.io_retry`).
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ROBUSTNESS_RETRY_H
#define RPRISM_ROBUSTNESS_RETRY_H

#include <chrono>
#include <thread>

namespace rprism {

struct RetryPolicy {
  unsigned MaxAttempts = 3;     ///< Total attempts (first try included).
  unsigned BackoffMicros = 100; ///< Sleep before attempt 2; doubles after.
};

/// Runs \p Operation (returning true on success) up to
/// \p Policy.MaxAttempts times, sleeping an exponentially growing backoff
/// between attempts. \p NotifyRetry(AttemptJustFailed) is called before
/// each retry sleep. Returns the final attempt's outcome.
template <typename Op, typename OnRetry>
bool retryWithBackoff(const RetryPolicy &Policy, Op &&Operation,
                      OnRetry &&NotifyRetry) {
  unsigned Backoff = Policy.BackoffMicros;
  for (unsigned Attempt = 1;; ++Attempt) {
    if (Operation())
      return true;
    if (Attempt >= Policy.MaxAttempts)
      return false;
    NotifyRetry(Attempt);
    std::this_thread::sleep_for(std::chrono::microseconds(Backoff));
    Backoff *= 2;
  }
}

} // namespace rprism

#endif // RPRISM_ROBUSTNESS_RETRY_H
