//===- robustness/Retry.h - Bounded retry with exponential backoff --------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One rung of the degradation ladder (docs/ROBUSTNESS.md): transient I/O
/// errors get a small, bounded number of retries with exponential backoff
/// before the operation fails for real. Header-only and dependency-free so
/// any layer can use it; callers report retries to their own counters via
/// the NotifyRetry callback (the trace loader counts `robust.io_retry`).
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ROBUSTNESS_RETRY_H
#define RPRISM_ROBUSTNESS_RETRY_H

#include <chrono>
#include <string>
#include <thread>

namespace rprism {

struct RetryPolicy {
  unsigned MaxAttempts = 3;     ///< Total attempts (first try included).
  unsigned BackoffMicros = 100; ///< Sleep before attempt 2; doubles after.
};

/// Runs \p Operation (returning true on success) up to
/// \p Policy.MaxAttempts times, sleeping an exponentially growing backoff
/// between attempts. \p NotifyRetry(AttemptJustFailed) is called before
/// each retry sleep. Returns the final attempt's outcome.
template <typename Op, typename OnRetry>
bool retryWithBackoff(const RetryPolicy &Policy, Op &&Operation,
                      OnRetry &&NotifyRetry) {
  unsigned Backoff = Policy.BackoffMicros;
  for (unsigned Attempt = 1;; ++Attempt) {
    if (Operation())
      return true;
    if (Attempt >= Policy.MaxAttempts)
      return false;
    NotifyRetry(Attempt);
    std::this_thread::sleep_for(std::chrono::microseconds(Backoff));
    Backoff *= 2;
  }
}

/// The process-wide policy every trace-file load retries under (mmap and
/// arena-read paths alike). Defaults to RetryPolicy{}; configurable via
/// setIoRetryPolicy — the CLI routes `--retry-policy` / the
/// RPRISM_RETRY_POLICY environment variable here. Thread-safe: the policy
/// is stored packed in one atomic, so readers never observe a torn
/// attempts/backoff pair.
RetryPolicy ioRetryPolicy();
void setIoRetryPolicy(const RetryPolicy &Policy);

/// Parses a retry-policy spec of the form "attempts=N,base_ms=M" (either
/// key alone is fine; unmentioned keys keep their defaults). Mirrors the
/// fault-spec contract: all-or-nothing — on a malformed spec \p Out is
/// untouched, false is returned, and \p Error (when non-null) gets a
/// one-line diagnostic. attempts must be >= 1 (the first try included).
bool parseRetryPolicy(const std::string &Spec, RetryPolicy &Out,
                      std::string *Error = nullptr);

} // namespace rprism

#endif // RPRISM_ROBUSTNESS_RETRY_H
