//===- robustness/FaultInjector.cpp ---------------------------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "robustness/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace rprism;

const char *rprism::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::FileOpen:
    return "file-open";
  case FaultSite::FileRead:
    return "file-read";
  case FaultSite::FileMmap:
    return "file-mmap";
  case FaultSite::SectionChecksum:
    return "section-checksum";
  case FaultSite::ViewIndexBorrow:
    return "view-index-borrow";
  case FaultSite::CacheInsert:
    return "cache-insert";
  case FaultSite::PoolDispatch:
    return "pool-dispatch";
  }
  return "unknown";
}

FaultInjector &FaultInjector::get() {
  static FaultInjector Instance;
  return Instance;
}

void FaultInjector::arm(uint64_t NewSeed) {
  Armed.store(false, std::memory_order_relaxed);
  Seed = NewSeed;
  StallMicros = 50;
  for (SiteState &S : Sites) {
    S.Occurrences.store(0, std::memory_order_relaxed);
    S.Injected.store(0, std::memory_order_relaxed);
    S.Probability = 0.0;
    S.OneShotAt = -1;
  }
  Armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  Armed.store(false, std::memory_order_relaxed);
  for (SiteState &S : Sites) {
    S.Probability = 0.0;
    S.OneShotAt = -1;
  }
}

void FaultInjector::configure(FaultSite Site, double Probability,
                              int64_t OneShotAt) {
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  S.Probability = Probability;
  S.OneShotAt = OneShotAt;
}

uint64_t FaultInjector::occurrences(FaultSite Site) const {
  return Sites[static_cast<unsigned>(Site)].Occurrences.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(FaultSite Site) const {
  return Sites[static_cast<unsigned>(Site)].Injected.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::decisionHash(FaultSite Site,
                                     uint64_t Occurrence) const {
  // splitmix64 over (seed, site, occurrence); self-contained so this
  // library needs no dependencies.
  uint64_t X = Seed ^ (uint64_t{static_cast<unsigned>(Site)} << 56) ^
               (Occurrence * 0x9e3779b97f4a7c15ull);
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool FaultInjector::fireSlow(FaultSite Site) {
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  uint64_t N = S.Occurrences.fetch_add(1, std::memory_order_relaxed);
  bool Hit = S.OneShotAt >= 0 && N == static_cast<uint64_t>(S.OneShotAt);
  if (!Hit && S.Probability > 0.0) {
    // Top 53 bits as a uniform double in [0, 1).
    double U = static_cast<double>(decisionHash(Site, N) >> 11) *
               (1.0 / 9007199254740992.0);
    Hit = U < S.Probability;
  }
  if (Hit)
    S.Injected.fetch_add(1, std::memory_order_relaxed);
  return Hit;
}

bool FaultInjector::corruptSlow(FaultSite Site, void *Data, size_t Size) {
  if (Size == 0 || !fireSlow(Site))
    return false;
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  uint64_t N = S.Occurrences.load(std::memory_order_relaxed);
  uint64_t H = decisionHash(Site, N + 0x517cc1b727220a95ull);
  size_t ByteIndex = static_cast<size_t>(H % Size);
  unsigned Bit = static_cast<unsigned>((H >> 32) % 8);
  static_cast<uint8_t *>(Data)[ByteIndex] ^= uint8_t{1} << Bit;
  return true;
}

void FaultInjector::stallSlow(FaultSite Site) {
  if (!fireSlow(Site))
    return;
  std::this_thread::sleep_for(std::chrono::microseconds(StallMicros));
}

bool FaultInjector::armFromSpec(const std::string &Spec, std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };

  // Parse everything before touching state: a malformed spec must not
  // leave the injector half-armed.
  uint64_t NewSeed = 0;
  int64_t NewStall = -1;
  struct Clause {
    FaultSite Site;
    double Probability;
    int64_t OneShotAt;
  };
  std::vector<Clause> Clauses;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Part = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Part.empty())
      continue;

    auto ParseU64 = [&Fail](const std::string &Text, const char *What,
                            uint64_t &Out) {
      char *EndPtr = nullptr;
      errno = 0;
      unsigned long long V = std::strtoull(Text.c_str(), &EndPtr, 10);
      if (Text.empty() || *EndPtr || errno)
        return Fail(std::string("fault-spec: bad ") + What + " '" + Text +
                    "'");
      Out = V;
      return true;
    };

    if (Part.rfind("seed=", 0) == 0) {
      if (!ParseU64(Part.substr(5), "seed", NewSeed))
        return false;
      continue;
    }
    if (Part.rfind("stall=", 0) == 0) {
      uint64_t Micros = 0;
      if (!ParseU64(Part.substr(6), "stall", Micros))
        return false;
      NewStall = static_cast<int64_t>(Micros);
      continue;
    }

    size_t Colon = Part.find(':');
    if (Colon == std::string::npos)
      return Fail("fault-spec: clause '" + Part +
                  "' is not seed=, stall=, or <site>:<prob>[@N]");
    std::string SiteName = Part.substr(0, Colon);
    std::string Rest = Part.substr(Colon + 1);

    int SiteIndex = -1;
    for (unsigned I = 0; I != NumFaultSites; ++I)
      if (SiteName == faultSiteName(static_cast<FaultSite>(I))) {
        SiteIndex = static_cast<int>(I);
        break;
      }
    if (SiteIndex < 0)
      return Fail("fault-spec: unknown site '" + SiteName + "'");

    int64_t OneShotAt = -1;
    size_t At = Rest.find('@');
    if (At != std::string::npos) {
      uint64_t N = 0;
      if (!ParseU64(Rest.substr(At + 1), "occurrence", N))
        return false;
      OneShotAt = static_cast<int64_t>(N);
      Rest = Rest.substr(0, At);
    }

    char *EndPtr = nullptr;
    errno = 0;
    double Probability = std::strtod(Rest.c_str(), &EndPtr);
    if (Rest.empty() || *EndPtr || errno || Probability < 0.0 ||
        Probability > 1.0)
      return Fail("fault-spec: probability '" + Rest +
                  "' is not a number in [0, 1]");
    Clauses.push_back(
        {static_cast<FaultSite>(SiteIndex), Probability, OneShotAt});
  }

  arm(NewSeed);
  if (NewStall >= 0)
    setStallMicros(static_cast<unsigned>(NewStall));
  for (const Clause &C : Clauses)
    configure(C.Site, C.Probability, C.OneShotAt);
  return true;
}
