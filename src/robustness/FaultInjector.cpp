//===- robustness/FaultInjector.cpp ---------------------------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "robustness/FaultInjector.h"

#include <chrono>
#include <thread>

using namespace rprism;

const char *rprism::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::FileOpen:
    return "file-open";
  case FaultSite::FileRead:
    return "file-read";
  case FaultSite::FileMmap:
    return "file-mmap";
  case FaultSite::SectionChecksum:
    return "section-checksum";
  case FaultSite::ViewIndexBorrow:
    return "view-index-borrow";
  case FaultSite::CacheInsert:
    return "cache-insert";
  case FaultSite::PoolDispatch:
    return "pool-dispatch";
  }
  return "unknown";
}

FaultInjector &FaultInjector::get() {
  static FaultInjector Instance;
  return Instance;
}

void FaultInjector::arm(uint64_t NewSeed) {
  Armed.store(false, std::memory_order_relaxed);
  Seed = NewSeed;
  StallMicros = 50;
  for (SiteState &S : Sites) {
    S.Occurrences.store(0, std::memory_order_relaxed);
    S.Injected.store(0, std::memory_order_relaxed);
    S.Probability = 0.0;
    S.OneShotAt = -1;
  }
  Armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  Armed.store(false, std::memory_order_relaxed);
  for (SiteState &S : Sites) {
    S.Probability = 0.0;
    S.OneShotAt = -1;
  }
}

void FaultInjector::configure(FaultSite Site, double Probability,
                              int64_t OneShotAt) {
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  S.Probability = Probability;
  S.OneShotAt = OneShotAt;
}

uint64_t FaultInjector::occurrences(FaultSite Site) const {
  return Sites[static_cast<unsigned>(Site)].Occurrences.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(FaultSite Site) const {
  return Sites[static_cast<unsigned>(Site)].Injected.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::decisionHash(FaultSite Site,
                                     uint64_t Occurrence) const {
  // splitmix64 over (seed, site, occurrence); self-contained so this
  // library needs no dependencies.
  uint64_t X = Seed ^ (uint64_t{static_cast<unsigned>(Site)} << 56) ^
               (Occurrence * 0x9e3779b97f4a7c15ull);
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool FaultInjector::fireSlow(FaultSite Site) {
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  uint64_t N = S.Occurrences.fetch_add(1, std::memory_order_relaxed);
  bool Hit = S.OneShotAt >= 0 && N == static_cast<uint64_t>(S.OneShotAt);
  if (!Hit && S.Probability > 0.0) {
    // Top 53 bits as a uniform double in [0, 1).
    double U = static_cast<double>(decisionHash(Site, N) >> 11) *
               (1.0 / 9007199254740992.0);
    Hit = U < S.Probability;
  }
  if (Hit)
    S.Injected.fetch_add(1, std::memory_order_relaxed);
  return Hit;
}

bool FaultInjector::corruptSlow(FaultSite Site, void *Data, size_t Size) {
  if (Size == 0 || !fireSlow(Site))
    return false;
  SiteState &S = Sites[static_cast<unsigned>(Site)];
  uint64_t N = S.Occurrences.load(std::memory_order_relaxed);
  uint64_t H = decisionHash(Site, N + 0x517cc1b727220a95ull);
  size_t ByteIndex = static_cast<size_t>(H % Size);
  unsigned Bit = static_cast<unsigned>((H >> 32) % 8);
  static_cast<uint8_t *>(Data)[ByteIndex] ^= uint8_t{1} << Bit;
  return true;
}

void FaultInjector::stallSlow(FaultSite Site) {
  if (!fireSlow(Site))
    return;
  std::this_thread::sleep_for(std::chrono::microseconds(StallMicros));
}
