//===- robustness/FaultInjector.h - Deterministic fault injection ---------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, seeded fault injector for exercising the ingestion
/// pipeline's degradation ladder (see docs/ROBUSTNESS.md). Production code
/// calls the static hooks at the points where the real world can fail —
/// opening, reading, or mapping a trace file, verifying a section
/// checksum, borrowing a persisted view index, inserting into the
/// DiffCache, dispatching a pool task — and tests arm the injector to
/// force those failures deterministically.
///
/// The design mirrors Telemetry: one registry singleton, a relaxed-atomic
/// armed flag, and static one-liner entry points that cost a single
/// relaxed load while disarmed (the default), so shipping the hooks in
/// release builds is free.
///
/// Decisions are a pure function of (seed, site, per-site occurrence
/// index): re-arming with the same seed replays the exact same fault
/// schedule, which is what makes injected-failure tests and the
/// trace_fuzz harness reproducible. Occurrence indices are counted with
/// relaxed atomics, so schedules are deterministic per site as long as
/// the hook is reached in a deterministic order (true for all current
/// sites except PoolDispatch, which only stalls and never fails).
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ROBUSTNESS_FAULTINJECTOR_H
#define RPRISM_ROBUSTNESS_FAULTINJECTOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rprism {

/// Hook points in the ingestion pipeline where faults can be injected.
enum class FaultSite : unsigned {
  FileOpen,        ///< open()/fopen() of a trace file fails (EIO-like).
  FileRead,        ///< A buffered read returns short / flips bits.
  FileMmap,        ///< mmap() fails; loader must fall back to the arena.
  SectionChecksum, ///< A v3 section checksum verify reports a mismatch.
  ViewIndexBorrow, ///< Borrowing the persisted view index fails.
  CacheInsert,     ///< A DiffCache insert fails (allocation-failure-like).
  PoolDispatch,    ///< ThreadPool task dispatch stalls (scheduling jitter).
};

inline constexpr unsigned NumFaultSites = 7;

/// Printable site name ("file-open", "cache-insert", ...).
const char *faultSiteName(FaultSite Site);

/// The registry. All hooks are static and no-ops (one relaxed load) while
/// disarmed. Tests arm it with a seed, configure per-site probabilities or
/// one-shot occurrence indices, run the code under test, and disarm.
class FaultInjector {
public:
  static FaultInjector &get();

  static bool enabled() {
    return get().Armed.load(std::memory_order_relaxed);
  }

  /// Arms the injector with a deterministic seed and clears all per-site
  /// configuration and counts. Not thread-safe against in-flight hooks;
  /// arm/disarm from quiescent points only (tests, harness setup).
  void arm(uint64_t Seed);

  /// Disarms and clears configuration; hooks return to free no-ops.
  void disarm();

  /// Configures one site: \p Probability in [0, 1] makes a seeded
  /// pseudo-random fraction of occurrences fire; \p OneShotAt >= 0 makes
  /// exactly that occurrence index fire (in addition to the probability).
  void configure(FaultSite Site, double Probability, int64_t OneShotAt = -1);

  /// Stall duration for maybeStall() hits, in microseconds.
  void setStallMicros(unsigned Micros) { StallMicros = Micros; }

  /// Arms and configures from a textual spec — the `--fault-spec` /
  /// RPRISM_FAULT_SPEC surface. Comma-separated clauses:
  ///
  ///   seed=N              arm seed (default 0)
  ///   stall=MICROS        stall duration for pool-dispatch hits
  ///   <site>:<prob>       per-site fire probability in [0, 1]
  ///   <site>:<prob>@<N>   additionally fire exactly occurrence N
  ///
  /// Site names are faultSiteName()'s ("file-open", "file-read",
  /// "file-mmap", "section-checksum", "view-index-borrow", "cache-insert",
  /// "pool-dispatch"). Example:
  ///   seed=7,file-read:0.01,section-checksum:0@2,stall=100
  /// On success the injector is armed exactly as arm()+configure() calls
  /// would leave it. On a malformed spec nothing is armed, false is
  /// returned, and \p Error (when non-null) gets a one-line diagnostic.
  bool armFromSpec(const std::string &Spec, std::string *Error = nullptr);

  /// Times the site hook was reached while armed / times it fired.
  uint64_t occurrences(FaultSite Site) const;
  uint64_t injected(FaultSite Site) const;

  // -- Hooks (static so call sites stay one-liners) ------------------------

  /// Returns true when the site should fail this occurrence.
  static bool fire(FaultSite Site) {
    if (!enabled())
      return false;
    return get().fireSlow(Site);
  }

  /// Flips one seeded bit of [Data, Data+Size) when the site fires;
  /// returns true if a flip happened. Used to model in-flight data
  /// corruption that downstream checksums must catch.
  static bool corruptByte(FaultSite Site, void *Data, size_t Size) {
    if (!enabled())
      return false;
    return get().corruptSlow(Site, Data, Size);
  }

  /// Sleeps for the configured stall when the site fires. Models
  /// scheduling jitter; never fails the operation.
  static void maybeStall(FaultSite Site) {
    if (!enabled())
      return;
    get().stallSlow(Site);
  }

private:
  struct SiteState {
    std::atomic<uint64_t> Occurrences{0};
    std::atomic<uint64_t> Injected{0};
    double Probability = 0.0;
    int64_t OneShotAt = -1;
  };

  FaultInjector() = default;

  bool fireSlow(FaultSite Site);
  bool corruptSlow(FaultSite Site, void *Data, size_t Size);
  void stallSlow(FaultSite Site);

  /// Deterministic per-decision hash of (seed, site, occurrence).
  uint64_t decisionHash(FaultSite Site, uint64_t Occurrence) const;

  std::atomic<bool> Armed{false};
  uint64_t Seed = 0;
  unsigned StallMicros = 50;
  SiteState Sites[NumFaultSites];
};

/// RAII arm/disarm for tests: arms with \p Seed on construction, disarms
/// on destruction so a failing test cannot leak an armed injector into
/// later tests.
class ScopedFaultInjection {
public:
  explicit ScopedFaultInjection(uint64_t Seed) {
    FaultInjector::get().arm(Seed);
  }
  ~ScopedFaultInjection() { FaultInjector::get().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection &) = delete;
  ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;
};

} // namespace rprism

#endif // RPRISM_ROBUSTNESS_FAULTINJECTOR_H
