//===- diff/ViewsDiff.cpp -------------------------------------------------===//

#include "diff/ViewsDiff.h"

#include "diff/Lcs.h"
#include "support/SimdDispatch.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace rprism;

namespace {

/// Length of the equal prefix of A[0..Max) and B[0..Max) over two dense
/// fingerprint lanes. The kernel itself lives in support/SimdDispatch:
/// XOR-OR blocks at the widest tier the host supports (AVX2 32-byte, SSE2
/// 16-byte, or the original scalar 8x64-bit loop), selected once per
/// process by CPUID and forced scalar under RPRISM_NO_SIMD. Every tier
/// returns the identical boundary — the lanes are contiguous (gathered per
/// view pair), so this streams at memory bandwidth either way.
size_t matchRun(const uint64_t *A, const uint64_t *B, size_t Max) {
  return laneMatchRun(A, B, Max);
}

/// Index-aligned segments of the two traces whose fingerprint + tid lanes
/// carry equal digests — available when both traces loaded from intact
/// segmented (v4) files. Equal digests mean the per-eid fingerprints and
/// tids agree across the whole segment, so a lock-step evaluator standing
/// on the same eid on both sides can consume the rest of the segment
/// without scanning the lanes: run-skipping at segment granularity, the
/// warm-re-diff fast path when only a few segments of a trace changed.
class SegmentSkipPlan {
public:
  SegmentSkipPlan(const Trace &LT, const Trace &RT) {
    size_t N = std::min(LT.Segments.size(), RT.Segments.size());
    Ranges.reserve(N);
    for (size_t K = 0; K != N; ++K) {
      const TraceSegmentInfo &L = LT.Segments[K];
      const TraceSegmentInfo &R = RT.Segments[K];
      if (L.Begin == R.Begin && L.End == R.End && L.End > L.Begin &&
          L.Digest == R.Digest)
        Ranges.push_back({L.Begin, L.End});
    }
  }

  bool empty() const { return Ranges.empty(); }

  /// End of the skippable segment containing \p Eid, or 0 if none.
  uint32_t segEndCovering(uint32_t Eid) const {
    auto It = std::upper_bound(
        Ranges.begin(), Ranges.end(), Eid,
        [](uint32_t E, const Range &R) { return E < R.End; });
    return It != Ranges.end() && Eid >= It->Begin ? It->End : 0;
  }

private:
  struct Range {
    uint32_t Begin;
    uint32_t End;
  };
  std::vector<Range> Ranges; ///< Ascending, disjoint.
};

/// Evaluates ONE correlated thread-view pair with fully isolated state:
/// its own similarity marks, anchor map, explored-pair dedup set, compare
/// counter, and difference sequences. Isolation is what makes thread-pair
/// evaluations independent tasks — with per-pair results merged in
/// correlation order, `--jobs N` produces the same DiffResult (and the
/// same total compare-op count) as `--jobs 1`, which runs the very same
/// per-pair code sequentially.
class PairEvaluator {
public:
  PairEvaluator(const ViewWeb &Left, const ViewWeb &Right,
                const ViewCorrelation &X, const ViewsDiffOptions &Options,
                const BaselineLanes *SharedLeft = nullptr,
                const SegmentSkipPlan *Skip = nullptr)
      : LeftWeb(Left), RightWeb(Right), X(X), Options(Options),
        SharedLeft(SharedLeft), Skip(Skip), LT(Left.trace()),
        RT(Right.trace()) {
    LeftSimilar.assign(LT.size(), false);
    RightSimilar.assign(RT.size(), false);
  }

  void evalThreadPair(const View &LV, const View &RV);

  // -- Per-pair results, merged by viewsDiff() ----------------------------
  std::vector<bool> LeftSimilar;  ///< This pair's Pi, left side.
  std::vector<bool> RightSimilar; ///< This pair's Pi, right side.
  std::vector<DiffSequence> Sequences;
  std::unordered_map<uint32_t, uint32_t> Anchors; ///< left eid -> right eid.
  CompareCounter Ops;
  uint64_t RunSkips = 0;       ///< Fingerprint-lane runs consumed (telemetry).
  uint64_t SharedLaneHits = 0; ///< Left lanes served by SharedLeft.
  uint64_t SegSkips = 0;       ///< Segments consumed by digest, not scan.

private:
  bool eq(uint32_t LeftEid, uint32_t RightEid) {
    return eventEquals(LT, LeftEid, RT, RightEid, &Ops);
  }

  /// Records an exploration-produced similar pair: marks both sides and
  /// stores the anchor (anchors are queried ahead of the cursors by
  /// anchoredPair/findNextSync, so only exploration marks — which can land
  /// ahead — need the map).
  void markSimilar(uint32_t LeftEid, uint32_t RightEid) {
    markMatched(LeftEid, RightEid);
    Anchors[LeftEid] = RightEid;
  }

  /// Marks a pair matched at the cursors (STEP-VIEW-MATCH / sync points).
  /// The cursors advance past it immediately, so no anchor is stored —
  /// skipping the hash insert on the hot lock-step path.
  void markMatched(uint32_t LeftEid, uint32_t RightEid) {
    LeftSimilar[LeftEid] = true;
    RightSimilar[RightEid] = true;
  }

  bool anchoredPair(uint32_t LeftEid, uint32_t RightEid) const {
    auto It = Anchors.find(LeftEid);
    return It != Anchors.end() && It->second == RightEid;
  }

  bool sameSite(uint32_t LeftEid, uint32_t RightEid) const;
  void mergeAdjacentSequences(const View &LV, const View &RV);
  void exploreSecondary(const View &LV, const View &RV, size_t I, size_t J);
  void windowedLcs(const View &LSecondary, int64_t LPos,
                   const View &RSecondary, int64_t RPos);
  std::pair<size_t, size_t> findNextSync(const View &LV, const View &RV,
                                         size_t I, size_t J);
  void emitSequences(const View &LV, const View &RV, size_t LBegin,
                     size_t LEnd, size_t RBegin, size_t REnd);

  const ViewWeb &LeftWeb;
  const ViewWeb &RightWeb;
  const ViewCorrelation &X;
  const ViewsDiffOptions &Options;
  /// Pre-gathered left-side lanes (1-vs-N variational mode), or null.
  const BaselineLanes *SharedLeft;
  /// Digest-equal aligned segments of the two traces, or null.
  const SegmentSkipPlan *Skip;
  const Trace &LT;
  const Trace &RT;

  /// Contiguous per-view fingerprint lanes, gathered once per pair: lane
  /// position i holds the fingerprint of the view's i-th entry. The
  /// lock-step loop compares lanes, not entries — matched runs touch 8
  /// bytes per step instead of the entry payload. When SharedLeft serves
  /// the left view, LLane stays empty and LLaneData aliases the shared
  /// storage instead — the contents are identical either way.
  std::vector<uint64_t> LLane;
  std::vector<uint64_t> RLane;
  const uint64_t *LLaneData = nullptr;
  const uint64_t *RLaneData = nullptr;

  /// View pairs already explored at the current mismatch (dedup).
  std::unordered_set<uint64_t> ExploredPairs;
};

} // namespace

void PairEvaluator::windowedLcs(const View &LSecondary, int64_t LPos,
                                const View &RSecondary, int64_t RPos) {
  // win(gamma, delta): a fixed window of the secondary view centered on the
  // position of the linked entry.
  auto Window = [this](const View &V, int64_t Pos) {
    int64_t Begin = Pos - Options.Window;
    int64_t End = Pos + Options.Window + 1;
    if (Begin < 0)
      Begin = 0;
    if (End > static_cast<int64_t>(V.Entries.size()))
      End = static_cast<int64_t>(V.Entries.size());
    return EidSpan{V.Entries.data() + Begin,
                   static_cast<size_t>(End - Begin)};
  };
  EidSpan LSpan = Window(LSecondary, LPos);
  EidSpan RSpan = Window(RSecondary, RPos);
  LcsResult Lcs = lcsMatch(LT, LSpan, RT, RSpan, &Ops, nullptr);

  // Anchor only *runs* of consecutive matches (consecutive on both sides
  // of the window). An isolated match is usually a commonly-occurring
  // value pairing with an unrelated instance — precisely the
  // blind-correlation failure mode §3.2 attributes to raw LCS — while
  // moved blocks and gap bridges match as runs. Tiny windows cannot form
  // runs, so they keep their single matches.
  if (LSpan.Size <= 2 || RSpan.Size <= 2) {
    for (auto [L, R] : Lcs.Matches)
      markSimilar(L, R);
    return;
  }
  auto IndexIn = [](EidSpan Span, uint32_t Eid) {
    for (size_t K = 0; K != Span.Size; ++K)
      if (Span[K] == Eid)
        return static_cast<int64_t>(K);
    return int64_t{-1};
  };
  for (size_t K = 0; K != Lcs.Matches.size(); ++K) {
    auto [L, R] = Lcs.Matches[K];
    int64_t LIdx = IndexIn(LSpan, L);
    int64_t RIdx = IndexIn(RSpan, R);
    auto Adjacent = [&](size_t Other) {
      auto [OL, OR] = Lcs.Matches[Other];
      int64_t DL = IndexIn(LSpan, OL) - LIdx;
      int64_t DR = IndexIn(RSpan, OR) - RIdx;
      return DL == DR && (DL == 1 || DL == -1);
    };
    bool InRun = (K > 0 && Adjacent(K - 1)) ||
                 (K + 1 < Lcs.Matches.size() && Adjacent(K + 1));
    if (InRun)
      markSimilar(L, R);
  }
}

void PairEvaluator::exploreSecondary(const View &LV, const View &RV, size_t I,
                                     size_t J) {
  ExploredPairs.clear();
  int64_t Delta = Options.Delta;

  // Candidate entries within +-delta of each cursor (SIMILAR-FROM-LINKED-
  // VIEWS constrains gamma5/gamma6 to a constant distance from the
  // mismatching entries). Each candidate's linked-view list is computed
  // once up front — the nested loop below visits every (left, right)
  // candidate combination, and a per-combination viewsOf() was the
  // dominant allocation cost of exploration.
  struct Candidate {
    int64_t Offset;                ///< DL/DR relative to the cursor.
    uint32_t Eid;
    std::vector<uint32_t> ViewIds; ///< Views this entry belongs to.
  };
  auto Collect = [Delta](const ViewWeb &Web, const View &V, size_t Cursor) {
    std::vector<Candidate> Result;
    Result.reserve(2 * Delta + 1);
    for (int64_t D = -Delta; D <= Delta; ++D) {
      int64_t Pos = static_cast<int64_t>(Cursor) + D;
      if (Pos < 0 || Pos >= static_cast<int64_t>(V.Entries.size()))
        continue;
      uint32_t Eid = V.Entries[Pos];
      Result.push_back({D, Eid, Web.viewsOf(Eid)});
    }
    return Result;
  };
  std::vector<Candidate> LeftCands = Collect(LeftWeb, LV, I);
  std::vector<Candidate> RightCands = Collect(RightWeb, RV, J);

  for (const Candidate &LC : LeftCands) {
    int64_t DL = LC.Offset;
    uint32_t LeftEid = LC.Eid;

    for (const Candidate &RC : RightCands) {
      int64_t DR = RC.Offset;
      uint32_t RightEid = RC.Eid;

      for (uint32_t LViewId : LC.ViewIds) {
        const View &LSecondary = LeftWeb.view(LViewId);
        if (LSecondary.Type == ViewType::Thread)
          continue; // The thread view is the primary view itself.
        for (uint32_t RViewId : RC.ViewIds) {
          const View &RSecondary = RightWeb.view(RViewId);
          if (RSecondary.Type != LSecondary.Type)
            continue;

          // Matching views: correlated by X_nu, or — under the §5
          // relaxation — at the same distance from the current
          // known-correlated point (the cursors).
          bool Correlated =
              X.rightOf(LViewId) == static_cast<int32_t>(RViewId);
          bool Relaxed = Options.RelaxedCorrelation && DL == DR;
          if (!Correlated && !Relaxed)
            continue;

          uint64_t PairKey =
              (static_cast<uint64_t>(LViewId) << 32) | RViewId;
          if (!ExploredPairs.insert(PairKey).second)
            continue;

          int64_t LPos = ViewWeb::positionOf(LSecondary, LeftEid);
          int64_t RPos = ViewWeb::positionOf(RSecondary, RightEid);
          if (LPos < 0 || RPos < 0)
            continue;
          windowedLcs(LSecondary, LPos, RSecondary, RPos);
        }
      }
    }
  }
}

std::pair<size_t, size_t> PairEvaluator::findNextSync(const View &LV,
                                                      const View &RV,
                                                      size_t I, size_t J) {
  size_t N = LV.Entries.size();
  size_t M = RV.Entries.size();
  // Diagonal search: smallest total skip (A + B) such that the entries at
  // (I+A, J+B) are similar — equal under =e or anchored as a pair by the
  // secondary-view exploration. This realizes STEP-VIEW-NOMATCH's "skip up
  // to the next pair of similar entries" with the minimal-skip choice.
  for (size_t D = 1; D <= Options.ScanAhead; ++D) {
    for (size_t A = 0; A <= D; ++A) {
      size_t B = D - A;
      size_t LI = I + A;
      size_t RJ = J + B;
      if (LI >= N || RJ >= M)
        continue;
      uint32_t LeftEid = LV.Entries[LI];
      uint32_t RightEid = RV.Entries[RJ];
      if (eq(LeftEid, RightEid) || anchoredPair(LeftEid, RightEid))
        return {LI, RJ};
    }
    if (I + D >= N && J + D >= M)
      break; // Both sides exhausted within this distance.
  }

  // Local scan failed: jump to the earliest *anchor* pair ahead of both
  // cursors. Anchors come from secondary-view exploration and "could be
  // thousands of entries away" (§3.4) — e.g. a short object view bridging
  // a one-sided gap of tens of thousands of entries. Hash lookups only, so
  // this stays linear in the skipped region.
  for (size_t LI = I; LI < N; ++LI) {
    auto It = Anchors.find(LV.Entries[LI]);
    if (It == Anchors.end())
      continue;
    int64_t RPos = ViewWeb::positionOf(RV, It->second);
    if (RPos >= 0 && static_cast<size_t>(RPos) >= J)
      return {LI, static_cast<size_t>(RPos)};
  }
  return {N, M}; // No sync point: the rest is one big difference.
}

void PairEvaluator::emitSequences(const View &LV, const View &RV,
                                  size_t LBegin, size_t LEnd, size_t RBegin,
                                  size_t REnd) {
  // Split the skipped region into sequences, breaking at anchored
  // (similar) entries on either side.
  size_t LI = LBegin;
  size_t RJ = RBegin;
  while (LI < LEnd || RJ < REnd) {
    while (LI < LEnd && LeftSimilar[LV.Entries[LI]])
      ++LI;
    while (RJ < REnd && RightSimilar[RV.Entries[RJ]])
      ++RJ;
    if (LI >= LEnd && RJ >= REnd)
      break;
    DiffSequence Seq;
    Seq.LeftTid = LV.Tid;
    while (LI < LEnd && !LeftSimilar[LV.Entries[LI]])
      Seq.LeftEids.push_back(LV.Entries[LI++]);
    while (RJ < REnd && !RightSimilar[RV.Entries[RJ]])
      Seq.RightEids.push_back(RV.Entries[RJ++]);
    Sequences.push_back(std::move(Seq));
  }
}

/// True when two entries are the same event *site* — same kind, name, and
/// target object instance — so a mismatch between them is a value
/// modification, not an insertion/deletion. Reads the kind/name/target
/// columns only.
bool PairEvaluator::sameSite(uint32_t LeftEid, uint32_t RightEid) const {
  if (LT.Kinds[LeftEid] != RT.Kinds[RightEid] ||
      LT.Names[LeftEid] != RT.Names[RightEid])
    return false;
  const ObjRepr &A = LT.Targets[LeftEid];
  const ObjRepr &B = RT.Targets[RightEid];
  return A.ClassName == B.ClassName && A.CreationSeq == B.CreationSeq;
}

/// Fuses consecutive sequences with no matched entry between them (a
/// modification run flowing directly into a skip region, or region splits
/// at anchors that later turned out adjacent): difference sequences are
/// *maximal* contiguous runs, matching the paper's sequence counting.
void PairEvaluator::mergeAdjacentSequences(const View &LV, const View &RV) {
  auto Adjacent = [](const View &V, const std::vector<uint32_t> &A,
                     const std::vector<uint32_t> &B) {
    if (A.empty() || B.empty())
      return true; // No constraint from an empty side.
    int64_t End = ViewWeb::positionOf(V, A.back());
    int64_t Begin = ViewWeb::positionOf(V, B.front());
    return End >= 0 && Begin == End + 1;
  };

  std::vector<DiffSequence> Merged;
  for (DiffSequence &Seq : Sequences) {
    if (!Merged.empty() &&
        Adjacent(LV, Merged.back().LeftEids, Seq.LeftEids) &&
        Adjacent(RV, Merged.back().RightEids, Seq.RightEids)) {
      DiffSequence &Prev = Merged.back();
      Prev.LeftEids.insert(Prev.LeftEids.end(), Seq.LeftEids.begin(),
                           Seq.LeftEids.end());
      Prev.RightEids.insert(Prev.RightEids.end(), Seq.RightEids.begin(),
                            Seq.RightEids.end());
    } else {
      Merged.push_back(std::move(Seq));
    }
  }
  Sequences = std::move(Merged);
}

void PairEvaluator::evalThreadPair(const View &LV, const View &RV) {
  size_t N = LV.Entries.size();
  size_t M = RV.Entries.size();

  // Gather this pair's fingerprint lanes: one pass of strided loads per
  // side, after which the lock-step loop runs over two dense uint64_t
  // arrays. Only possible when both traces are fingerprint-complete; the
  // laneless fallback below compares entries directly.
  bool UseLanes = LT.HasFingerprints && RT.HasFingerprints;
  if (UseLanes) {
    TelemetrySpan GatherSpan("lane.gather");
    const std::vector<uint64_t> *Shared =
        SharedLeft ? SharedLeft->lane(LV.Id) : nullptr;
    if (Shared && Shared->size() == N) {
      // 1-vs-N: the baseline's lane was gathered once up front; alias it
      // instead of re-gathering. Same contents, so same results.
      LLaneData = Shared->data();
      ++SharedLaneHits;
    } else {
      LLane.resize(N);
      const uint64_t *LFps = LT.Fps.data();
      for (size_t I = 0; I != N; ++I)
        LLane[I] = LFps[LV.Entries[I]];
      LLaneData = LLane.data();
    }
    RLane.resize(M);
    const uint64_t *RFps = RT.Fps.data();
    for (size_t J = 0; J != M; ++J)
      RLane[J] = RFps[RV.Entries[J]];
    RLaneData = RLane.data();
  }

  // Laneless path: a thread view's entries are strided across the columns,
  // so prefetch the =e-relevant column bytes a few steps ahead to overlap
  // the misses; correctness is unaffected.
  constexpr size_t Prefetch = 8;
  auto PrefetchAt = [](const Trace &T, const View &V, size_t Pos) {
    if (Pos < V.Entries.size()) {
      uint32_t Eid = V.Entries[Pos];
      __builtin_prefetch(&T.Names[Eid]);
      __builtin_prefetch(&T.Targets[Eid]);
      __builtin_prefetch(&T.Values[Eid]);
    }
  };

  size_t I = 0;
  size_t J = 0;
  while (I < N && J < M) {
    if (UseLanes) {
      // STEP-VIEW-MATCH, run-skipped: consume the maximal fingerprint-
      // equal run in one wide-word scan. Equal fingerprints are accepted
      // as matches without re-reading the entry payload (the fingerprint
      // hashes exactly the =e components); each matched step still counts
      // as one compare op, exactly as the per-step =e did.
      size_t Max = std::min(N - I, M - J);
      size_t K = 0;
      if (Skip) {
        // Segment-granular run-skip: while both cursors stand on the same
        // eid inside a digest-equal segment, consume the views' remaining
        // entries of that segment without scanning the lanes — the digest
        // already certifies the fingerprints agree per eid. The eid memcmp
        // is the cheap certificate that the two views advance in lockstep
        // through the segment. matchRun below extends the same run past
        // the certified region, so the run count and compare-op totals
        // are exactly what the pure lane scan produces.
        while (K < Max) {
          uint32_t Eid = LV.Entries[I + K];
          if (Eid != RV.Entries[J + K])
            break;
          uint32_t SegEnd = Skip->segEndCovering(Eid);
          if (SegEnd == 0)
            break;
          const uint32_t *LB = LV.Entries.data() + I + K;
          const uint32_t *RB = RV.Entries.data() + J + K;
          size_t LA = std::lower_bound(LB, LV.Entries.data() + N, SegEnd) - LB;
          size_t RA = std::lower_bound(RB, RV.Entries.data() + M, SegEnd) - RB;
          if (LA != RA || LA == 0 || K + LA > Max ||
              std::memcmp(LB, RB, LA * sizeof(uint32_t)) != 0)
            break;
          K += LA;
          ++SegSkips;
        }
      }
      K += matchRun(LLaneData + I + K, RLaneData + J + K, Max - K);
      if (K != 0) {
        ++RunSkips;
        Ops.Count += K;
        // One side at a time: each pass walks one sequential id array and
        // one bitset instead of alternating between four streams.
        for (size_t S = 0; S != K; ++S)
          LeftSimilar[LV.Entries[I + S]] = true;
        for (size_t S = 0; S != K; ++S)
          RightSimilar[RV.Entries[J + S]] = true;
        I += K;
        J += K;
        if (I >= N || J >= M)
          break;
      }
      // Fingerprint mismatch at the run boundary: the per-step =e would
      // have ticked once and rejected on the fingerprint compare; account
      // for that op, then consult the anchor map as before.
      Ops.tick();
      uint32_t LeftEid = LV.Entries[I];
      uint32_t RightEid = RV.Entries[J];
      if (anchoredPair(LeftEid, RightEid)) {
        markMatched(LeftEid, RightEid);
        ++I;
        ++J;
        continue;
      }
    } else {
      PrefetchAt(LT, LV, I + Prefetch);
      PrefetchAt(RT, RV, J + Prefetch);
      uint32_t LeftEid = LV.Entries[I];
      uint32_t RightEid = RV.Entries[J];

      // STEP-VIEW-MATCH. Compare before consulting the anchor map: anchors
      // are produced by windowed LCS, whose matches satisfy =e, so the map
      // lookup can never succeed where the compare fails — it only serves
      // as the sync-point certificate when exploration already paired
      // entries. Trying =e first keeps the dominant all-equal path free of
      // hash probes.
      if (eq(LeftEid, RightEid) || anchoredPair(LeftEid, RightEid)) {
        markMatched(LeftEid, RightEid);
        ++I;
        ++J;
        continue;
      }
    }

    uint32_t LeftEid = LV.Entries[I];
    uint32_t RightEid = RV.Entries[J];

    // Modification step: the same event site with different values is a
    // paired value difference ("the LCS gravitates towards correlating
    // identical values, identifying the new parameter as the one
    // difference", §3.2). Consuming it pairwise keeps secondary-view
    // anchoring from blurring genuine value differences into matches with
    // unrelated instances of the same event.
    if (sameSite(LeftEid, RightEid)) {
      DiffSequence Seq;
      Seq.LeftTid = LV.Tid;
      // Inside a modification run the fingerprints are already gathered:
      // a lane mismatch is exactly the reject =e's fingerprint fast path
      // would take (one tick, same verdict), so the full compare only
      // runs when the lanes agree — where its result is authoritative
      // either way, keeping op totals identical to the laneless path.
      auto StepEquals = [&]() {
        if (UseLanes && LLaneData[I] != RLaneData[J]) {
          Ops.tick();
          return false;
        }
        return eq(LV.Entries[I], RV.Entries[J]);
      };
      while (I < N && J < M && !StepEquals() &&
             sameSite(LV.Entries[I], RV.Entries[J])) {
        Seq.LeftEids.push_back(LV.Entries[I++]);
        Seq.RightEids.push_back(RV.Entries[J++]);
      }
      Sequences.push_back(std::move(Seq));
      continue;
    }

    // STEP-VIEW-NOMATCH.
    if (Options.ExploreSecondaryViews)
      exploreSecondary(LV, RV, I, J);
    auto [NI, NJ] = findNextSync(LV, RV, I, J);
    emitSequences(LV, RV, I, NI, J, NJ);
    I = NI;
    J = NJ;
  }
  // Tail: whatever remains on either side is a difference (the formal
  // semantics pads the shorter trace with eof entries, §3.1).
  emitSequences(LV, RV, I, N, J, M);
  mergeAdjacentSequences(LV, RV);
}

/// Thread views with no correlated partner are differences wholesale
/// (filtered against the merged similarity set: an unpaired thread's
/// entries can still be anchored from a paired thread's exploration).
static void emitWholeViewSequence(DiffResult &Result, const View &V,
                                  bool IsLeft) {
  DiffSequence Seq;
  Seq.LeftTid = V.Tid;
  for (uint32_t Eid : V.Entries) {
    if (IsLeft && !Result.LeftSimilar[Eid])
      Seq.LeftEids.push_back(Eid);
    if (!IsLeft && !Result.RightSimilar[Eid])
      Seq.RightEids.push_back(Eid);
  }
  if (!Seq.LeftEids.empty() || !Seq.RightEids.empty())
    Result.Sequences.push_back(std::move(Seq));
}

DiffResult rprism::viewsDiff(const ViewWeb &Left, const ViewWeb &Right,
                             const ViewCorrelation &X,
                             const ViewsDiffOptions &Options,
                             ThreadPool *Pool,
                             const BaselineLanes *SharedLeft) {
  Timer Clock;
  const Trace &LT = Left.trace();
  const Trace &RT = Right.trace();

  // Shared lanes only apply when they were gathered over this exact left
  // web (address identity: lanes index into that web's views).
  if (SharedLeft && &SharedLeft->web() != &Left)
    SharedLeft = nullptr;

  DiffResult Result;
  Result.Left = &LT;
  Result.Right = &RT;
  Result.LeftSimilar.assign(LT.size(), false);
  Result.RightSimilar.assign(RT.size(), false);

  const std::vector<std::pair<uint32_t, uint32_t>> &Pairs = X.threadPairs();

  std::optional<ThreadPool> OwnPool;
  if (!Pool) {
    OwnPool.emplace(effectiveDiffJobs(Options, LT.size() + RT.size()));
    Pool = &*OwnPool;
  }

  // Evaluate each correlated thread-view pair in isolation. The evaluators
  // share nothing, so they run as independent pool tasks; with an inline
  // pool (jobs = 1) the same evaluators run sequentially in pair order.
  // Segment-granular run-skip plan: only meaningful when both traces came
  // from intact segmented files AND both are fingerprint-complete (the
  // plan's digests certify lane equality, which only the lane path uses).
  SegmentSkipPlan SkipPlan(LT, RT);
  const SegmentSkipPlan *Skip =
      !SkipPlan.empty() && LT.HasFingerprints && RT.HasFingerprints
          ? &SkipPlan
          : nullptr;

  std::vector<std::unique_ptr<PairEvaluator>> Evals;
  Evals.reserve(Pairs.size());
  for (size_t K = 0; K != Pairs.size(); ++K)
    Evals.push_back(std::make_unique<PairEvaluator>(Left, Right, X, Options,
                                                    SharedLeft, Skip));
  {
    TelemetrySpan EvalSpan("evaluate");
    if (Pool->numWorkers() > 1 && Pairs.size() > 1) {
      for (size_t K = 0; K != Pairs.size(); ++K)
        Pool->submit([&Evals, &Left, &Right, &Pairs, K] {
          TelemetrySpan PairSpan("pair");
          Evals[K]->evalThreadPair(Left.view(Pairs[K].first),
                                   Right.view(Pairs[K].second));
        });
      Pool->wait();
    } else {
      for (size_t K = 0; K != Pairs.size(); ++K) {
        TelemetrySpan PairSpan("pair");
        Evals[K]->evalThreadPair(Left.view(Pairs[K].first),
                                 Right.view(Pairs[K].second));
      }
    }
  }

  TelemetrySpan MergeSpan("merge");

  // Deterministic merge, in correlation (left-tid) order: the union of the
  // per-pair Pi sets is the final similarity set, sequences concatenate,
  // and per-pair compare counters sum to a jobs-independent total.
  std::unordered_set<uint32_t> PairedLeft;
  std::unordered_set<uint32_t> PairedRight;
  std::unordered_map<uint32_t, uint32_t> AnchorUnion;
  uint64_t TotalOps = 0;
  uint64_t TotalRunSkips = 0;
  uint64_t TotalSharedHits = 0;
  uint64_t TotalSegSkips = 0;
  for (size_t K = 0; K != Pairs.size(); ++K) {
    PairedLeft.insert(Pairs[K].first);
    PairedRight.insert(Pairs[K].second);
    PairEvaluator &E = *Evals[K];
    for (size_t I = 0; I != E.LeftSimilar.size(); ++I)
      if (E.LeftSimilar[I])
        Result.LeftSimilar[I] = true;
    for (size_t I = 0; I != E.RightSimilar.size(); ++I)
      if (E.RightSimilar[I])
        Result.RightSimilar[I] = true;
    for (const auto &[L, R] : E.Anchors)
      AnchorUnion.emplace(L, R);
    TotalOps += E.Ops.Count;
    TotalRunSkips += E.RunSkips;
    TotalSharedHits += E.SharedLaneHits;
    TotalSegSkips += E.SegSkips;
    for (DiffSequence &Seq : E.Sequences)
      Result.Sequences.push_back(std::move(Seq));
  }

  for (const View &V : Left.views())
    if (V.Type == ViewType::Thread && !PairedLeft.count(V.Id))
      emitWholeViewSequence(Result, V, /*IsLeft=*/true);
  for (const View &V : Right.views())
    if (V.Type == ViewType::Thread && !PairedRight.count(V.Id))
      emitWholeViewSequence(Result, V, /*IsLeft=*/false);

  // Anchors found late (or by another pair) can mark entries similar after
  // they were already emitted into a sequence; re-filter so sequences
  // contain only entries that are differences in the final, merged Pi.
  std::vector<DiffSequence> Filtered;
  Filtered.reserve(Result.Sequences.size());
  for (DiffSequence &Seq : Result.Sequences) {
    DiffSequence Clean;
    Clean.LeftTid = Seq.LeftTid;
    for (uint32_t Eid : Seq.LeftEids)
      if (!Result.LeftSimilar[Eid])
        Clean.LeftEids.push_back(Eid);
    for (uint32_t Eid : Seq.RightEids)
      if (!Result.RightSimilar[Eid])
        Clean.RightEids.push_back(Eid);
    if (!Clean.LeftEids.empty() || !Clean.RightEids.empty())
      Filtered.push_back(std::move(Clean));
  }
  Result.Sequences = std::move(Filtered);

  Result.Stats.CompareOps = TotalOps;
  Result.Stats.Seconds = Clock.seconds();
  // Views-based memory: the per-pair and merged similarity bitsets, the
  // anchor map, the per-pair fingerprint lanes, and the view webs' entry
  // indices — all linear in the trace sizes. Counted as if every pair's
  // state coexists (the full-parallelism worst case) so the figure does
  // not depend on the worker count.
  uint64_t WebBytes = 0;
  for (const View &V : Left.views())
    WebBytes += V.Entries.size() * sizeof(uint32_t);
  for (const View &V : Right.views())
    WebBytes += V.Entries.size() * sizeof(uint32_t);
  uint64_t LaneBytes = 0;
  if (LT.HasFingerprints && RT.HasFingerprints)
    for (const auto &[L, R] : Pairs)
      LaneBytes += (Left.view(L).Entries.size() +
                    Right.view(R).Entries.size()) *
                   sizeof(uint64_t);
  Result.Stats.PeakBytes =
      WebBytes + LaneBytes +
      (LT.size() + RT.size()) / 8 * (1 + Pairs.size()) +
      AnchorUnion.size() * 16;

  // Counters are the jobs-invariant core of the diff telemetry (the merge
  // above makes them deterministic); the peak-bytes figure is a gauge.
  if (Telemetry::enabled()) {
    Telemetry::counterAdd("diff.compare_ops", TotalOps);
    Telemetry::counterAdd("diff.sequences", Result.Sequences.size());
    Telemetry::counterAdd("diff.anchors", AnchorUnion.size());
    Telemetry::counterAdd("eval.runskip", TotalRunSkips);
    Telemetry::counterAdd("trace.segments_skipped", TotalSegSkips);
    if (TotalSharedHits)
      Telemetry::counterAdd("lane.shared_hit", TotalSharedHits);
    // Which kernel tier the lock-step scans dispatched to (0 scalar,
    // 1 sse2, 2 avx2). A gauge — host capability, not algorithmic work.
    Telemetry::gaugeMax("diff.simd_tier",
                        static_cast<double>(activeSimdTier()));
    Telemetry::gaugeMax("diff.peak_bytes",
                        static_cast<double>(Result.Stats.PeakBytes));
    for (const DiffSequence &Seq : Result.Sequences)
      Telemetry::observe(
          "diff.sequence_entries",
          static_cast<double>(Seq.LeftEids.size() + Seq.RightEids.size()));
  }
  return Result;
}

BaselineLanes::BaselineLanes(const ViewWeb &W) : Web(&W) {
  const Trace &T = W.trace();
  if (!T.HasFingerprints)
    return; // Every lane lookup stays null; evaluators gather as usual.
  TelemetrySpan GatherSpan("lane.gather");
  const uint64_t *Fps = T.Fps.data();
  for (const View &V : W.views()) {
    if (V.Type != ViewType::Thread)
      continue; // The lock-step core only scans thread-view lanes.
    std::vector<uint64_t> &Lane = Lanes[V.Id];
    Lane.resize(V.Entries.size());
    for (size_t I = 0; I != V.Entries.size(); ++I)
      Lane[I] = Fps[V.Entries[I]];
  }
}

const std::vector<uint64_t> *BaselineLanes::lane(uint32_t ViewId) const {
  auto It = Lanes.find(ViewId);
  return It == Lanes.end() ? nullptr : &It->second;
}

uint64_t BaselineLanes::bytes() const {
  uint64_t Total = 0;
  for (const auto &[Id, Lane] : Lanes)
    Total += Lane.size() * sizeof(uint64_t);
  return Total;
}

unsigned rprism::effectiveDiffJobs(const ViewsDiffOptions &Options,
                                   size_t TotalEntries) {
  unsigned Requested =
      Options.Jobs ? Options.Jobs : ThreadPool::defaultConcurrency();
  if (Requested <= 1 || Options.ParallelCutoffEntries == 0)
    return Requested;
  // One hardware thread: workers only add queue latency, so auto mode
  // stays sequential. An explicit Jobs request is honored anyway — the
  // caller asked for workers (e.g. to observe pool overlap in a
  // timeline trace), and the result is identical either way.
  if (ThreadPool::defaultConcurrency() <= 1 && Options.Jobs == 0)
    return 1;
  // Below the work threshold the pool round-trips dominate the win.
  if (TotalEntries < Options.ParallelCutoffEntries)
    return 1;
  return Requested;
}

DiffResult rprism::viewsDiff(const Trace &Left, const Trace &Right,
                             const ViewsDiffOptions &Options) {
  TelemetrySpan Span("views-diff");
  // One pool for the whole pipeline: both web builds (four index families
  // each) and the thread-pair evaluation stage. The adaptive cutoff may
  // clamp the worker count to 1 (sequential path); the result is identical
  // by the determinism contract, so only the schedule changes. The chosen
  // mode is recorded as a gauge (gauges are exempt from the jobs-
  // invariance contract).
  unsigned Jobs = effectiveDiffJobs(Options, Left.size() + Right.size());
  Telemetry::gaugeMax("diff.effective_jobs", static_cast<double>(Jobs));
  ThreadPool Pool(Jobs);
  ViewWeb LeftWeb(Left, &Pool, Options.UseViewIndex);
  ViewWeb RightWeb(Right, &Pool, Options.UseViewIndex);
  ViewCorrelation X(LeftWeb, RightWeb);
  return viewsDiff(LeftWeb, RightWeb, X, Options, &Pool);
}
