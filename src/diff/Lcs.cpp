//===- diff/Lcs.cpp -------------------------------------------------------===//

#include "diff/Lcs.h"

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace rprism;

namespace {

/// Shared prefix/suffix trimming (the paper's "optimized version of the LCS
/// algorithm (common-prefix/suffix optimizations)", §5.1). Returns the
/// number of leading and trailing =e-equal pairs, which are matched for
/// free without touching the DP table.
struct Trim {
  size_t Prefix = 0;
  size_t Suffix = 0;
};

Trim trimEnds(const Trace &Left, EidSpan LeftIds, const Trace &Right,
              EidSpan RightIds, CompareCounter *Ops) {
  Trim T;
  size_t N = LeftIds.Size;
  size_t M = RightIds.Size;
  size_t Max = std::min(N, M);
  while (T.Prefix < Max &&
         eventEquals(Left, LeftIds[T.Prefix], Right, RightIds[T.Prefix],
                     Ops))
    ++T.Prefix;
  size_t Rem = Max - T.Prefix;
  while (T.Suffix < Rem &&
         eventEquals(Left, LeftIds[N - 1 - T.Suffix], Right,
                     RightIds[M - 1 - T.Suffix], Ops))
    ++T.Suffix;
  return T;
}

void pushTrimmedMatches(LcsResult &Result, EidSpan LeftIds, EidSpan RightIds,
                        const Trim &T, bool Prefix) {
  if (Prefix) {
    for (size_t I = 0; I != T.Prefix; ++I)
      Result.Matches.emplace_back(LeftIds[I], RightIds[I]);
  } else {
    size_t N = LeftIds.Size;
    size_t M = RightIds.Size;
    for (size_t I = T.Suffix; I != 0; --I)
      Result.Matches.emplace_back(LeftIds[N - I], RightIds[M - I]);
  }
}

/// One row of LCS lengths for the Hirschberg split: lengths of LCS of
/// Left[0..N) against every prefix of Right. O(M) space.
std::vector<uint32_t> lcsLengthRow(const Trace &Left, EidSpan LeftIds,
                                   const Trace &Right, EidSpan RightIds,
                                   bool Reversed, CompareCounter *Ops) {
  size_t N = LeftIds.Size;
  size_t M = RightIds.Size;
  std::vector<uint32_t> Prev(M + 1, 0);
  std::vector<uint32_t> Cur(M + 1, 0);
  for (size_t I = 1; I <= N; ++I) {
    size_t Li = Reversed ? N - I : I - 1;
    uint32_t LEid = LeftIds[Li];
    for (size_t J = 1; J <= M; ++J) {
      size_t Rj = Reversed ? M - J : J - 1;
      if (eventEquals(Left, LEid, Right, RightIds[Rj], Ops))
        Cur[J] = Prev[J - 1] + 1;
      else
        Cur[J] = std::max(Prev[J], Cur[J - 1]);
    }
    std::swap(Prev, Cur);
  }
  return Prev;
}

void hirschbergRec(const Trace &Left, EidSpan LeftIds, const Trace &Right,
                   EidSpan RightIds, CompareCounter *Ops,
                   LcsResult &Result) {
  size_t N = LeftIds.Size;
  size_t M = RightIds.Size;
  if (N == 0 || M == 0)
    return;
  if (N == 1) {
    for (size_t J = 0; J != M; ++J) {
      if (eventEquals(Left, LeftIds[0], Right, RightIds[J], Ops)) {
        Result.Matches.emplace_back(LeftIds[0], RightIds[J]);
        return;
      }
    }
    return;
  }

  size_t Mid = N / 2;
  EidSpan LeftTop{LeftIds.Ids, Mid};
  EidSpan LeftBot{LeftIds.Ids + Mid, N - Mid};
  std::vector<uint32_t> Forward =
      lcsLengthRow(Left, LeftTop, Right, RightIds, /*Reversed=*/false, Ops);
  std::vector<uint32_t> Backward =
      lcsLengthRow(Left, LeftBot, Right, RightIds, /*Reversed=*/true, Ops);

  size_t BestJ = 0;
  uint32_t Best = 0;
  for (size_t J = 0; J <= M; ++J) {
    uint32_t Total = Forward[J] + Backward[M - J];
    if (Total > Best) {
      Best = Total;
      BestJ = J;
    }
  }
  EidSpan RightTop{RightIds.Ids, BestJ};
  EidSpan RightBot{RightIds.Ids + BestJ, M - BestJ};
  hirschbergRec(Left, LeftTop, Right, RightTop, Ops, Result);
  hirschbergRec(Left, LeftBot, Right, RightBot, Ops, Result);
}

} // namespace

LcsResult rprism::lcsMatch(const Trace &Left, EidSpan LeftIds,
                           const Trace &Right, EidSpan RightIds,
                           CompareCounter *Ops, MemoryAccountant *Mem) {
  LcsResult Result;
  Trim T = trimEnds(Left, LeftIds, Right, RightIds, Ops);
  pushTrimmedMatches(Result, LeftIds, RightIds, T, /*Prefix=*/true);

  size_t N = LeftIds.Size - T.Prefix - T.Suffix;
  size_t M = RightIds.Size - T.Prefix - T.Suffix;
  const uint32_t *LIds = LeftIds.Ids + T.Prefix;
  const uint32_t *RIds = RightIds.Ids + T.Prefix;

  if (N != 0 && M != 0) {
    // DP table of LCS lengths, (N+1) x (M+1), uint32 cells. This is the
    // allocation that kills the baseline on long traces.
    uint64_t TableBytes = static_cast<uint64_t>(N + 1) * (M + 1) * 4;
    if (Mem && !Mem->charge(TableBytes)) {
      Result.OutOfMemory = true;
      Result.Matches.clear();
      return Result;
    }
    std::vector<std::vector<uint32_t>> Table(
        N + 1, std::vector<uint32_t>(M + 1, 0));
    for (size_t I = 1; I <= N; ++I) {
      uint32_t LEid = LIds[I - 1];
      for (size_t J = 1; J <= M; ++J) {
        if (eventEquals(Left, LEid, Right, RIds[J - 1], Ops))
          Table[I][J] = Table[I - 1][J - 1] + 1;
        else
          Table[I][J] = std::max(Table[I - 1][J], Table[I][J - 1]);
      }
    }
    // Reconstruct, walking back from (N, M).
    std::vector<std::pair<uint32_t, uint32_t>> Middle;
    size_t I = N;
    size_t J = M;
    while (I != 0 && J != 0) {
      if (eventEquals(Left, LIds[I - 1], Right, RIds[J - 1], Ops) &&
          Table[I][J] == Table[I - 1][J - 1] + 1) {
        Middle.emplace_back(LIds[I - 1], RIds[J - 1]);
        --I;
        --J;
      } else if (Table[I - 1][J] >= Table[I][J - 1]) {
        --I;
      } else {
        --J;
      }
    }
    Result.Matches.insert(Result.Matches.end(), Middle.rbegin(),
                          Middle.rend());
    if (Mem)
      Mem->release(TableBytes);
  }

  pushTrimmedMatches(Result, LeftIds, RightIds, T, /*Prefix=*/false);
  return Result;
}

LcsResult rprism::lcsMatchHirschberg(const Trace &Left, EidSpan LeftIds,
                                     const Trace &Right, EidSpan RightIds,
                                     CompareCounter *Ops) {
  LcsResult Result;
  Trim T = trimEnds(Left, LeftIds, Right, RightIds, Ops);
  pushTrimmedMatches(Result, LeftIds, RightIds, T, /*Prefix=*/true);
  EidSpan LMid{LeftIds.Ids + T.Prefix, LeftIds.Size - T.Prefix - T.Suffix};
  EidSpan RMid{RightIds.Ids + T.Prefix, RightIds.Size - T.Prefix - T.Suffix};
  hirschbergRec(Left, LMid, Right, RMid, Ops, Result);
  pushTrimmedMatches(Result, LeftIds, RightIds, T, /*Prefix=*/false);
  return Result;
}

size_t rprism::lcsLength(const Trace &Left, EidSpan LeftIds,
                         const Trace &Right, EidSpan RightIds,
                         CompareCounter *Ops) {
  std::vector<uint32_t> Row =
      lcsLengthRow(Left, LeftIds, Right, RightIds, /*Reversed=*/false, Ops);
  return Row.empty() ? 0 : Row.back();
}

namespace {

/// All entry ids of a trace, 0..N-1 (entries are stored eid-ordered).
std::vector<uint32_t> allEids(const Trace &T) {
  std::vector<uint32_t> Ids(T.size());
  for (uint32_t I = 0; I != Ids.size(); ++I)
    Ids[I] = I;
  return Ids;
}

} // namespace

DiffResult rprism::lcsDiff(const Trace &Left, const Trace &Right,
                           const LcsDiffOptions &Options) {
  TelemetrySpan Span("lcs-diff");
  Timer Clock;
  DiffResult Result;
  Result.Left = &Left;
  Result.Right = &Right;
  Result.LeftSimilar.assign(Left.size(), false);
  Result.RightSimilar.assign(Right.size(), false);

  std::vector<uint32_t> LeftIds = allEids(Left);
  std::vector<uint32_t> RightIds = allEids(Right);
  EidSpan LSpan{LeftIds.data(), LeftIds.size()};
  EidSpan RSpan{RightIds.data(), RightIds.size()};

  CompareCounter Ops;
  MemoryAccountant Mem(Options.MemCapBytes);
  LcsResult Lcs =
      Options.UseHirschberg
          ? lcsMatchHirschberg(Left, LSpan, Right, RSpan, &Ops)
          : lcsMatch(Left, LSpan, Right, RSpan, &Ops, &Mem);

  Result.Stats.CompareOps = Ops.Count;
  Result.Stats.PeakBytes = Mem.peakBytes();
  Result.Stats.OutOfMemory = Lcs.OutOfMemory;
  Telemetry::counterAdd("diff.compare_ops", Ops.Count);
  Telemetry::gaugeMax("diff.peak_bytes",
                      static_cast<double>(Result.Stats.PeakBytes));
  if (Lcs.OutOfMemory) {
    Result.Stats.Seconds = Clock.seconds();
    return Result; // Table 1's "(out of memory failure)" row.
  }

  for (auto [L, R] : Lcs.Matches) {
    Result.LeftSimilar[L] = true;
    Result.RightSimilar[R] = true;
  }

  // Difference sequences: the gaps between consecutive LCS matches.
  size_t Li = 0;
  size_t Ri = 0;
  auto EmitGap = [&](size_t LEnd, size_t REnd) {
    if (Li == LEnd && Ri == REnd)
      return;
    DiffSequence Seq;
    Seq.LeftTid = Li < LEnd
                      ? Left.Tids[static_cast<uint32_t>(Li)]
                      : (Ri < REnd ? Right.Tids[static_cast<uint32_t>(Ri)]
                                   : 0);
    for (; Li < LEnd; ++Li)
      Seq.LeftEids.push_back(static_cast<uint32_t>(Li));
    for (; Ri < REnd; ++Ri)
      Seq.RightEids.push_back(static_cast<uint32_t>(Ri));
    Result.Sequences.push_back(std::move(Seq));
  };
  for (auto [L, R] : Lcs.Matches) {
    EmitGap(L, R);
    Li = L + 1;
    Ri = R + 1;
  }
  EmitGap(Left.size(), Right.size());

  Result.Stats.Seconds = Clock.seconds();
  return Result;
}
