//===- diff/DiffResult.h - Shared result types for trace differencing -----===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Both differencing semantics (§3.2 LCS-based, §3.3 views-based) produce
/// the same shape of result: the similarity set Pi as per-entry flags, the
/// derived difference set, and *difference sequences* — contiguous runs of
/// differences that the paper reports as the unit of tool output ("each
/// representing one higher-level semantic difference").
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_DIFF_DIFFRESULT_H
#define RPRISM_DIFF_DIFFRESULT_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rprism {

/// Cost/outcome counters for one differencing run. CompareOps is the
/// paper's speedup metric (Fig. 14b); PeakBytes and OutOfMemory model the
/// Table 1 memory column (LCS exhausts its cap on the largest benchmark).
struct DiffStats {
  uint64_t CompareOps = 0;
  double Seconds = 0;
  uint64_t PeakBytes = 0;
  bool OutOfMemory = false;
};

/// A contiguous run of differing entries, paired across the two traces.
/// Either side may be empty (pure insertion/deletion).
struct DiffSequence {
  std::vector<uint32_t> LeftEids;
  std::vector<uint32_t> RightEids;
  uint32_t LeftTid = 0; ///< Thread context the run occurred in.

  size_t size() const { return LeftEids.size() + RightEids.size(); }
};

/// Result of differencing a (left, right) trace pair.
struct DiffResult {
  const Trace *Left = nullptr;
  const Trace *Right = nullptr;

  /// Pi membership: LeftSimilar[eid] is true when the left entry was found
  /// similar to some right entry (and vice versa).
  std::vector<bool> LeftSimilar;
  std::vector<bool> RightSimilar;

  std::vector<DiffSequence> Sequences;
  DiffStats Stats;

  /// Differences per side (entries not in Pi).
  uint64_t numLeftDiffs() const {
    uint64_t N = 0;
    for (bool Similar : LeftSimilar)
      N += !Similar;
    return N;
  }
  uint64_t numRightDiffs() const {
    uint64_t N = 0;
    for (bool Similar : RightSimilar)
      N += !Similar;
    return N;
  }
  uint64_t numDiffs() const { return numLeftDiffs() + numRightDiffs(); }

  /// Renders the diff sequences with full dynamic context (the "semantic
  /// diff" of contribution 3). \p MaxSequences / \p MaxEntries bound output.
  std::string render(size_t MaxSequences = 20, size_t MaxEntries = 8) const;
};

/// One-line label for a difference sequence: the dominant executing method
/// and the objects it touches ("each [sequence] representing one
/// higher-level semantic difference", §5.1 — the label names it).
std::string summarizeSequence(const Trace &Left, const Trace &Right,
                              const DiffSequence &Seq);

} // namespace rprism

#endif // RPRISM_DIFF_DIFFRESULT_H
