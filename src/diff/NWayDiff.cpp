//===- diff/NWayDiff.cpp --------------------------------------------------===//

#include "diff/NWayDiff.h"

#include "support/SimdDispatch.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

using namespace rprism;

namespace {

/// Cluster-key label of a difference sequence: the dominant method (and up
/// to two touched objects) of whichever side is non-empty, *without* the
/// per-mutant -x/+y counts summarizeSequence appends — mutants diverging
/// at the same baseline site must produce the same string. Baseline
/// entries dominate when present (shared eids cluster exactly); pure
/// insertions fall back to the mutant side, whose method symbols are
/// interner-shared, so equal insertions still cluster.
std::string siteLabel(const Trace &Base, const Trace &Mutant,
                      const DiffSequence &Seq) {
  std::map<uint32_t, unsigned> MethodCounts;
  std::set<std::string> Objects;
  auto Visit = [&](const Trace &T, const std::vector<uint32_t> &Eids) {
    for (uint32_t Eid : Eids) {
      ++MethodCounts[T.Methods[Eid].Id];
      if (!T.Targets[Eid].isNone())
        Objects.insert(T.renderObj(T.Targets[Eid]));
    }
  };
  if (!Seq.LeftEids.empty())
    Visit(Base, Seq.LeftEids);
  else
    Visit(Mutant, Seq.RightEids);
  if (MethodCounts.empty())
    return "(empty sequence)";
  auto Dominant = std::max_element(
      MethodCounts.begin(), MethodCounts.end(),
      [](const auto &A, const auto &B) { return A.second < B.second; });
  std::ostringstream OS;
  OS << "in " << Base.Strings->text(Symbol{Dominant->first});
  if (!Objects.empty()) {
    OS << " touching";
    size_t Shown = 0;
    for (const std::string &Obj : Objects) {
      if (Shown++ == 2) {
        OS << " ...";
        break;
      }
      OS << ' ' << Obj;
    }
  }
  return OS.str();
}

/// Gathers the fingerprint lane of one view (the same strided load the
/// pair evaluator performs).
std::vector<uint64_t> gatherLane(const Trace &T, const View &V) {
  std::vector<uint64_t> Lane(V.Entries.size());
  const uint64_t *Fps = T.Fps.data();
  for (size_t I = 0; I != V.Entries.size(); ++I)
    Lane[I] = Fps[V.Entries[I]];
  return Lane;
}

/// Lane-level agreement scan of one mutant: checks every correlated
/// thread-view pair's lanes with the dispatched kernels. Sets
/// \p Identical when every pair (and every thread view, both sides)
/// verifies bit-identical; returns the first divergence otherwise.
std::optional<LaneDivergence>
scanLanes(const ViewWeb &BaseWeb, const BaselineLanes &Lanes,
          const ViewWeb &MutWeb, const ViewCorrelation &X, bool &Identical) {
  const Trace &MT = MutWeb.trace();
  std::optional<LaneDivergence> First;
  size_t PairedBase = 0;
  size_t PairedMut = 0;
  bool AllEqual = true;
  for (const auto &[L, R] : X.threadPairs()) {
    ++PairedBase;
    ++PairedMut;
    const std::vector<uint64_t> *BaseLane = Lanes.lane(L);
    if (!BaseLane) {
      AllEqual = false; // No fingerprints: nothing to verify against.
      continue;
    }
    const View &RV = MutWeb.view(R);
    std::vector<uint64_t> MutLane = gatherLane(MT, RV);
    size_t Common = std::min(BaseLane->size(), MutLane.size());
    // Run-boundary verify: one whole-lane equality scan at the widest
    // dispatched tier answers the common case (mutant thread untouched).
    if (BaseLane->size() == MutLane.size() &&
        lanesEqual(BaseLane->data(), MutLane.data(), Common))
      continue;
    AllEqual = false;
    if (First)
      continue; // Only the earliest pair's divergence is reported.
    size_t K = laneMatchRun(BaseLane->data(), MutLane.data(), Common);
    LaneDivergence D;
    D.Tid = BaseWeb.view(L).Tid;
    D.Position = K;
    // Length of the all-differing run at the divergence point — how far
    // the traces stay in contention before any re-sync candidate.
    D.RunLen = K < Common ? laneMismatchRun(BaseLane->data() + K,
                                            MutLane.data() + K, Common - K)
                          : 0;
    First = D;
  }
  Identical = AllEqual && PairedBase == BaseWeb.numThreadViews() &&
              PairedMut == MutWeb.numThreadViews() &&
              BaseWeb.numThreadViews() > 0;
  return First;
}

} // namespace

uint64_t NWayResult::totalCompareOps() const {
  uint64_t Total = 0;
  for (const NWayMutantReport &M : Mutants)
    Total += M.Result.Stats.CompareOps;
  return Total;
}

std::string NWayResult::render(size_t MaxClusters) const {
  std::ostringstream OS;
  OS << "variational diff: 1 baseline (" << (Base ? Base->size() : 0)
     << " entries) vs " << Mutants.size() << " mutant(s): " << NumAgreeing
     << " agree, " << (Mutants.size() - NumAgreeing) << " diverge in "
     << Clusters.size() << " cluster(s)\n";
  size_t Shown = 0;
  for (const NWayCluster &C : Clusters) {
    if (Shown++ == MaxClusters) {
      OS << "  ... (" << (Clusters.size() - MaxClusters)
         << " more clusters)\n";
      break;
    }
    OS << "  cluster #" << Shown - 1 << " (thread " << C.SiteTid;
    if (C.SiteEid != UINT32_MAX)
      OS << ", first eid " << C.SiteEid;
    OS << ") " << C.Site << ": mutant";
    if (C.Mutants.size() > 1)
      OS << 's';
    for (size_t M : C.Mutants)
      OS << " #" << M;
    OS << '\n';
  }
  for (const NWayMutantReport &M : Mutants) {
    OS << "  mutant #" << M.Index << ": ";
    if (M.Agrees) {
      OS << "agrees with baseline";
      if (M.LanesIdentical)
        OS << " (lanes bit-identical)";
    } else {
      OS << M.Result.numDiffs() << " difference(s) in "
         << M.Result.Sequences.size() << " sequence(s), diverges " << M.Site;
      if (M.FirstDivergence)
        OS << " [lane: thread " << M.FirstDivergence->Tid << " pos "
           << M.FirstDivergence->Position << " run "
           << M.FirstDivergence->RunLen << "]";
    }
    OS << '\n';
  }
  return OS.str();
}

NWayResult rprism::nwayDiff(const Trace &Base,
                            const std::vector<const Trace *> &Mutants,
                            const ViewsDiffOptions &Options,
                            const NWayProviders &Providers) {
  TelemetrySpan Span("nway-diff");
  Timer Clock;

  NWayResult Result;
  Result.Base = &Base;
  Result.Mutants.reserve(Mutants.size());

  // One pool for the whole study, sized by the largest single diff (the
  // adaptive cutoff may clamp it to the sequential path — results are
  // identical either way per the jobs-determinism contract).
  size_t MaxMutantSize = 0;
  for (const Trace *M : Mutants)
    MaxMutantSize = std::max(MaxMutantSize, M->size());
  unsigned Jobs = effectiveDiffJobs(Options, Base.size() + MaxMutantSize);
  Telemetry::gaugeMax("diff.effective_jobs", static_cast<double>(Jobs));
  ThreadPool Pool(Jobs);

  // Web/correlation construction, through the provider hooks (cache) when
  // set and directly otherwise. Either route produces identical objects.
  auto MakeWeb = [&](const Trace &T) -> std::shared_ptr<const ViewWeb> {
    if (Providers.Web)
      return Providers.Web(T, &Pool, Options.UseViewIndex);
    return std::make_shared<const ViewWeb>(T, &Pool, Options.UseViewIndex);
  };
  auto MakeCorrelation =
      [&](const ViewWeb &L,
          const ViewWeb &R) -> std::shared_ptr<const ViewCorrelation> {
    if (Providers.Correlation)
      return Providers.Correlation(L, R);
    return std::make_shared<const ViewCorrelation>(L, R);
  };

  // The hoisted baseline work: web built once, lanes gathered once. Every
  // per-mutant evaluation reuses both (counted as lane.shared_hit).
  std::shared_ptr<const ViewWeb> BaseWebPtr = MakeWeb(Base);
  const ViewWeb &BaseWeb = *BaseWebPtr;
  BaselineLanes Lanes(BaseWeb);
  Result.SharedLaneBytes = Lanes.bytes();

  for (size_t M = 0; M != Mutants.size(); ++M) {
    const Trace &MT = *Mutants[M];
    std::shared_ptr<const ViewWeb> MutWebPtr = MakeWeb(MT);
    const ViewWeb &MutWeb = *MutWebPtr;
    std::shared_ptr<const ViewCorrelation> XPtr =
        MakeCorrelation(BaseWeb, MutWeb);
    const ViewCorrelation &X = *XPtr;

    NWayMutantReport Report;
    Report.Index = M;
    Report.Result = viewsDiff(BaseWeb, MutWeb, X, Options, &Pool, &Lanes);
    Report.Agrees =
        Report.Result.Sequences.empty() && Report.Result.numDiffs() == 0;
    Report.FirstDivergence =
        scanLanes(BaseWeb, Lanes, MutWeb, X, Report.LanesIdentical);

    if (!Report.Agrees && !Report.Result.Sequences.empty()) {
      const DiffSequence &First = Report.Result.Sequences.front();
      Report.Site = siteLabel(Base, MT, First);
      Report.SiteTid = First.LeftTid;
      Report.SiteEid =
          First.LeftEids.empty() ? UINT32_MAX : First.LeftEids.front();
    }
    Result.Mutants.push_back(std::move(Report));
  }

  // Cluster divergent mutants by first-divergence site, ordered by the
  // site's baseline position (thread, then eid, then label).
  std::map<std::tuple<uint32_t, uint32_t, std::string>, NWayCluster>
      ByKey;
  for (const NWayMutantReport &M : Result.Mutants) {
    if (M.Agrees) {
      ++Result.NumAgreeing;
      continue;
    }
    NWayCluster &C = ByKey[{M.SiteTid, M.SiteEid, M.Site}];
    C.Site = M.Site;
    C.SiteTid = M.SiteTid;
    C.SiteEid = M.SiteEid;
    C.Mutants.push_back(M.Index);
  }
  Result.Clusters.reserve(ByKey.size());
  for (auto &[Key, C] : ByKey)
    Result.Clusters.push_back(std::move(C));

  Result.Seconds = Clock.seconds();
  if (Telemetry::enabled()) {
    Telemetry::counterAdd("nway.mutants", Mutants.size());
    Telemetry::counterAdd("nway.agree", Result.NumAgreeing);
    Telemetry::counterAdd("nway.divergent",
                          Mutants.size() - Result.NumAgreeing);
    Telemetry::counterAdd("nway.clusters", Result.Clusters.size());
    Telemetry::gaugeMax("nway.shared_lane_bytes",
                        static_cast<double>(Result.SharedLaneBytes));
  }
  return Result;
}
