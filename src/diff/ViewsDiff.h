//===- diff/ViewsDiff.h - Views-based trace differencing (§3.3) -----------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The views-based differencing semantics. Each pair of correlated thread
/// views is evaluated with two alternating rules:
///
///   STEP-VIEW-MATCH    — equal heads (by =e) enter the similarity set Pi
///                        and both cursors advance (lock-step scanning);
///   STEP-VIEW-NOMATCH  — at a mismatch, secondary views linked to entries
///                        near the cursors are explored: views correlated
///                        by X_nu (or by the §5 *relaxed* context-sensitive
///                        rule: same offset from the last known-correlated
///                        point) are compared via LCS over fixed-size
///                        windows, and the matches become *anchors* added
///                        to Pi (LinkedSimilarEntries). The cursors then
///                        skip to the next pair of similar entries.
///
/// Anchors can mark entries far from the cursors as similar, which is what
/// makes the technique resilient to reorderings that plain LCS reports as
/// differences (§3.4) — and what makes difference sequences finer-grained.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_DIFF_VIEWSDIFF_H
#define RPRISM_DIFF_VIEWSDIFF_H

#include "correlate/Correlate.h"
#include "diff/DiffResult.h"

namespace rprism {

class ThreadPool;

/// Tunables of the views-based semantics. Delta and Window are the paper's
/// two fixed constants (entry neighborhood and LCS window); ScanAhead
/// bounds the re-synchronization search so overall work stays linear.
struct ViewsDiffOptions {
  unsigned Delta = 6;     ///< +-delta entries around a mismatch explored.
  unsigned Window = 12;   ///< Half-window for secondary-view LCS.
  unsigned ScanAhead = 4096; ///< Max skip to the next sync point.
  bool ExploreSecondaryViews = true; ///< Ablation: off = pure lock-step.
  bool RelaxedCorrelation = true;    ///< §5 refactoring tolerance.
  /// Worker threads for the pipeline (view-web builds, per-thread-pair
  /// evaluation, pair fingerprinting). 0 = hardware_concurrency; 1 runs
  /// the sequential path bit-for-bit. Every thread-pair evaluation is
  /// isolated (own anchors, similarity marks, and compare counter) and the
  /// per-pair results are merged in correlation order, so the DiffResult —
  /// including total compare-op counts — is identical for every value.
  unsigned Jobs = 0;
  /// Adaptive parallelism cutoff: when the two traces together hold fewer
  /// entries than this, `Jobs > 1` silently takes the sequential path —
  /// below the threshold the pool's queue overhead exceeds the win (the
  /// result is identical either way, so only time changes). Auto mode
  /// (`Jobs == 0`) also goes sequential when the host reports a single
  /// hardware thread; an explicit Jobs request is honored there. 0
  /// disables the adaptation (tests that exercise the parallel machinery
  /// on tiny traces set 0).
  size_t ParallelCutoffEntries = 32768;
  /// Reconstruct view webs from a trace's persisted ViewIndex when one is
  /// present (the warm path for indexed v3 files). Off = always build by
  /// scanning the entries; the result is identical either way (`rprism
  /// --no-view-cache` sets this off together with the diff cache).
  bool UseViewIndex = true;
};

/// The worker count the pipeline will actually use for \p Options on traces
/// totalling \p TotalEntries entries: Options.Jobs (0 = hardware
/// concurrency) clamped to 1 by the adaptive cutoff above. Exposed so
/// callers owning their pool (benchmarks) make the same choice.
unsigned effectiveDiffJobs(const ViewsDiffOptions &Options,
                           size_t TotalEntries);

/// Per-thread-view fingerprint lanes of one web, gathered once up front.
/// A pairwise diff gathers each side's lanes inside the pair evaluation;
/// when one baseline is differenced against N mutants (the 1-vs-N
/// variational mode), that re-gathers the baseline's lanes N times.
/// BaselineLanes hoists the gather: build it once from the baseline web
/// and pass it to every viewsDiff against that web — evaluators reuse the
/// shared lane (counted as `lane.shared_hit`) instead of re-gathering.
/// Purely an amortization: lane contents are identical to a fresh gather,
/// so results stay byte-identical to the pairwise path.
class BaselineLanes {
public:
  /// Gathers the lane of every thread view of \p Web. Empty (every lane
  /// lookup null) when the web's trace has no fingerprints.
  explicit BaselineLanes(const ViewWeb &Web);

  const ViewWeb &web() const { return *Web; }

  /// Dense fingerprint lane of thread view \p ViewId, or null when the
  /// view has no gathered lane.
  const std::vector<uint64_t> *lane(uint32_t ViewId) const;

  uint64_t bytes() const; ///< Total lane payload (telemetry/accounting).

private:
  const ViewWeb *Web;
  std::unordered_map<uint32_t, std::vector<uint64_t>> Lanes;
};

/// Runs the views-based differencing over two view webs whose traces share
/// a string interner. \p X supplies the view correlation (including the
/// X_TH thread pairs that seed the evaluation). \p Pool, when non-null,
/// overrides Options.Jobs for the evaluation stage (the caller keeps
/// ownership); otherwise a pool of Options.Jobs workers is used.
/// \p SharedLeft, when non-null and built over \p Left, supplies the left
/// side's pre-gathered fingerprint lanes (see BaselineLanes); the result
/// is identical with and without it.
DiffResult viewsDiff(const ViewWeb &Left, const ViewWeb &Right,
                     const ViewCorrelation &X,
                     const ViewsDiffOptions &Options = ViewsDiffOptions(),
                     ThreadPool *Pool = nullptr,
                     const BaselineLanes *SharedLeft = nullptr);

/// Convenience: builds webs + correlation internally (web index families
/// build concurrently on the Options.Jobs pool).
DiffResult viewsDiff(const Trace &Left, const Trace &Right,
                     const ViewsDiffOptions &Options = ViewsDiffOptions());

} // namespace rprism

#endif // RPRISM_DIFF_VIEWSDIFF_H
