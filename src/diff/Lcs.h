//===- diff/Lcs.h - LCS over trace entries (§3.2) --------------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Longest common subsequence over trace entries with respect to event
/// equality =e. Two algorithms:
///
///   - lcsMatch: the classic O(n*m) dynamic program with the paper's
///     common-prefix/common-suffix optimization, full match reconstruction,
///     compare-op counting, and byte accounting against a MemoryAccountant
///     (reproducing the baseline's out-of-memory failures on long traces);
///   - lcsMatchHirschberg: Hirschberg's linear-space divide-and-conquer
///     [CACM'75], cited by the paper as "roughly twice the computation
///     time" — used in the ablation bench.
///
/// Both also serve the views-based semantics, which computes LCS over
/// *fixed-size windows* of correlated secondary views (SIMILAR-FROM-LINKED-
/// VIEWS).
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_DIFF_LCS_H
#define RPRISM_DIFF_LCS_H

#include "diff/DiffResult.h"
#include "support/MemoryAccountant.h"

#include <cstdint>
#include <vector>

namespace rprism {

/// Matched entry pairs (left eid, right eid), ascending on both sides.
struct LcsResult {
  std::vector<std::pair<uint32_t, uint32_t>> Matches;
  bool OutOfMemory = false;
};

/// A span of entry ids within one trace (a view slice or a whole trace).
struct EidSpan {
  const uint32_t *Ids = nullptr;
  size_t Size = 0;

  uint32_t operator[](size_t I) const { return Ids[I]; }
};

/// Exact LCS via dynamic programming. \p Mem (optional) is charged for the
/// DP table; on cap exhaustion the result is flagged OutOfMemory with no
/// matches. \p Ops counts =e comparisons.
LcsResult lcsMatch(const Trace &Left, EidSpan LeftIds, const Trace &Right,
                   EidSpan RightIds, CompareCounter *Ops = nullptr,
                   MemoryAccountant *Mem = nullptr);

/// Hirschberg's linear-space LCS. Same matches-length guarantee as
/// lcsMatch (the actual match set may differ among equally long LCSs).
LcsResult lcsMatchHirschberg(const Trace &Left, EidSpan LeftIds,
                             const Trace &Right, EidSpan RightIds,
                             CompareCounter *Ops = nullptr);

/// Convenience: LCS length only.
size_t lcsLength(const Trace &Left, EidSpan LeftIds, const Trace &Right,
                 EidSpan RightIds, CompareCounter *Ops = nullptr);

/// Options for whole-trace LCS-based differencing.
struct LcsDiffOptions {
  /// Memory cap in bytes for the DP table; 0 = uncapped. Defaults to 6 GiB,
  /// scaled-down stand-in for the paper's 32 GB server cap.
  uint64_t MemCapBytes = 6ull << 30;
  bool UseHirschberg = false; ///< Linear space, ~2x compares (ablation).
};

/// The §3.2 baseline: whole-trace differencing via LCS (with prefix/suffix
/// optimization). On memory exhaustion, returns Stats.OutOfMemory with an
/// empty similarity set, mirroring Table 1's failed Derby row.
DiffResult lcsDiff(const Trace &Left, const Trace &Right,
                   const LcsDiffOptions &Options = LcsDiffOptions());

} // namespace rprism

#endif // RPRISM_DIFF_LCS_H
