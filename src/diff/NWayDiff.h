//===- diff/NWayDiff.h - 1-vs-N variational differencing ------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutation study (§6, Fig. 14) is a 1-vs-N workload: one baseline
/// trace differenced against N mutants. Run pairwise, each of the N diffs
/// re-builds the baseline's view web, re-correlates, and re-gathers the
/// baseline's fingerprint lanes. nwayDiff hoists the baseline work out of
/// the loop — web built once, lanes gathered once (BaselineLanes), shared
/// across every mutant evaluation — and adds the *variational* report on
/// top: which mutants agree with the baseline, which diverge, and the
/// divergent ones clustered by the baseline site where they first diverge.
///
/// Determinism contract: each mutant's DiffResult is byte-identical (same
/// rendered report, same compare-op total) to the pairwise
/// `viewsDiff(Base, Mutant)` — the shared state is pure amortization, and
/// the lane kernels return the same boundaries at every SIMD tier.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_DIFF_NWAYDIFF_H
#define RPRISM_DIFF_NWAYDIFF_H

#include "diff/ViewsDiff.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rprism {

/// Lane-level divergence of one mutant against the baseline: the first
/// position (within a correlated thread-view pair) where the fingerprint
/// lanes differ, and the length of the maximal all-differing run there.
/// Found with the dispatched laneMatchRun / laneMismatchRun kernels; a
/// coarse, memory-bandwidth-speed signal that fronts the semantic diff
/// (anchored reorderings can make lanes differ where the views-based
/// semantics finds similarity — the DiffResult stays authoritative).
struct LaneDivergence {
  uint32_t Tid = 0;      ///< Baseline thread id of the diverging pair.
  uint64_t Position = 0; ///< First differing index in the thread lane.
  uint64_t RunLen = 0;   ///< Maximal all-differing run length at Position.
};

/// Per-mutant outcome of the 1-vs-N evaluation.
struct NWayMutantReport {
  size_t Index = 0;  ///< Position in the input mutant list.
  DiffResult Result; ///< Byte-identical to the pairwise viewsDiff.

  /// No semantic differences at all: every entry of both traces is in Pi
  /// and no difference sequence was emitted.
  bool Agrees = false;

  /// Every correlated thread-view lane is bit-identical (same length,
  /// lanesEqual) — the strongest agreement: implies Agrees when both
  /// traces are fingerprint-complete and all threads correlate.
  bool LanesIdentical = false;

  /// Earliest lane divergence across the correlated thread pairs (by
  /// baseline thread order), when lanes were available and differ.
  std::optional<LaneDivergence> FirstDivergence;

  /// Label of the baseline site where this mutant first semantically
  /// diverges (the cluster key); empty when the mutant agrees.
  std::string Site;
  uint32_t SiteTid = 0;          ///< Thread of the first divergent sequence.
  uint32_t SiteEid = UINT32_MAX; ///< First baseline eid of it (or max).
};

/// Divergent mutants sharing one first-divergence site.
struct NWayCluster {
  std::string Site;            ///< Shared site label.
  uint32_t SiteTid = 0;
  uint32_t SiteEid = UINT32_MAX;
  std::vector<size_t> Mutants; ///< Input indices, ascending.
};

/// The variational report: per-mutant results plus the cross-mutant
/// clustering.
struct NWayResult {
  const Trace *Base = nullptr;
  std::vector<NWayMutantReport> Mutants;
  /// Divergence-site clusters in baseline order (thread, then position);
  /// agreeing mutants appear in no cluster.
  std::vector<NWayCluster> Clusters;
  size_t NumAgreeing = 0;
  uint64_t SharedLaneBytes = 0; ///< BaselineLanes payload gathered once.
  double Seconds = 0;           ///< Whole 1-vs-N wall-clock.

  /// Sum of per-mutant compare-op counts (identical to running the N
  /// pairwise diffs).
  uint64_t totalCompareOps() const;

  /// Text form of the variational report (the `rprism diff-nway` output):
  /// agreement summary, clusters with member mutants, per-mutant lines.
  std::string render(size_t MaxClusters = 50) const;
};

/// Pluggable construction of webs and correlations, letting a caller
/// route them through a cache without this module depending on one (the
/// cache module layers on top of diff; see cachedNWayDiff there). Both
/// callbacks must return results identical to direct construction — the
/// existing DiffCache contract.
struct NWayProviders {
  std::function<std::shared_ptr<const ViewWeb>(const Trace &, ThreadPool *,
                                               bool UseIndex)>
      Web;
  std::function<std::shared_ptr<const ViewCorrelation>(const ViewWeb &,
                                                       const ViewWeb &)>
      Correlation;
};

/// Differences \p Base against every trace in \p Mutants (all sharing the
/// baseline's StringInterner). The baseline's web and fingerprint lanes
/// are built once and reused by every mutant evaluation; \p Providers,
/// when its callbacks are set, supplies webs/correlations (cache hook).
/// Results are byte-identical to the N pairwise viewsDiff calls under
/// \p Options.
NWayResult nwayDiff(const Trace &Base,
                    const std::vector<const Trace *> &Mutants,
                    const ViewsDiffOptions &Options = ViewsDiffOptions(),
                    const NWayProviders &Providers = NWayProviders());

} // namespace rprism

#endif // RPRISM_DIFF_NWAYDIFF_H
