//===- diff/DiffResult.cpp ------------------------------------------------===//

#include "diff/DiffResult.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace rprism;

std::string rprism::summarizeSequence(const Trace &Left, const Trace &Right,
                                      const DiffSequence &Seq) {
  // Dominant executing method across both sides.
  std::map<uint32_t, unsigned> MethodCounts;
  std::set<std::string> Objects;
  auto Visit = [&](const Trace &T, const std::vector<uint32_t> &Eids) {
    for (uint32_t Eid : Eids) {
      ++MethodCounts[T.Methods[Eid].Id];
      if (!T.Targets[Eid].isNone())
        Objects.insert(T.renderObj(T.Targets[Eid]));
    }
  };
  Visit(Left, Seq.LeftEids);
  Visit(Right, Seq.RightEids);
  if (MethodCounts.empty())
    return "(empty sequence)";

  auto Dominant = std::max_element(
      MethodCounts.begin(), MethodCounts.end(),
      [](const auto &A, const auto &B) { return A.second < B.second; });
  // Both traces share one interner, so either resolves the symbol.
  std::ostringstream OS;
  OS << "in " << Left.Strings->text(Symbol{Dominant->first}) << " (-"
     << Seq.LeftEids.size() << "/+" << Seq.RightEids.size() << ")";
  if (!Objects.empty()) {
    OS << " touching";
    size_t Shown = 0;
    for (const std::string &Obj : Objects) {
      if (Shown++ == 3) {
        OS << " ...";
        break;
      }
      OS << ' ' << Obj;
    }
  }
  return OS.str();
}

std::string DiffResult::render(size_t MaxSequences, size_t MaxEntries) const {
  std::ostringstream OS;
  OS << "semantic diff: " << numDiffs() << " differences in "
     << Sequences.size() << " sequence(s)\n";
  size_t Shown = 0;
  for (const DiffSequence &Seq : Sequences) {
    if (Shown++ == MaxSequences) {
      OS << "  ... (" << (Sequences.size() - MaxSequences)
         << " more sequences)\n";
      break;
    }
    OS << "  sequence #" << Shown - 1 << " (thread " << Seq.LeftTid << ") "
       << summarizeSequence(*Left, *Right, Seq) << ":\n";
    size_t N = 0;
    for (uint32_t Eid : Seq.LeftEids) {
      if (N++ == MaxEntries) {
        OS << "    - ...\n";
        break;
      }
      OS << "    - " << Left->renderEntry(Eid) << '\n';
    }
    N = 0;
    for (uint32_t Eid : Seq.RightEids) {
      if (N++ == MaxEntries) {
        OS << "    + ...\n";
        break;
      }
      OS << "    + " << Right->renderEntry(Eid) << '\n';
    }
  }
  return OS.str();
}
