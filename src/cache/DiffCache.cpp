//===- cache/DiffCache.cpp - Digest-keyed LRU cache for repeat diffs ------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//

#include "cache/DiffCache.h"

#include "robustness/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "trace/Serialize.h"

#include <mutex>
#include <new>

using namespace rprism;

namespace {

/// Degradation-ladder rung shared by every insert site: when an insert
/// cannot happen (injected fault or a real allocation failure), the
/// computed payload is returned to the caller uncached — correctness is
/// unaffected, the repeat-use speedup is lost, and the fallback is
/// observable via `robust.cache_insert_dropped`.
void countInsertDropped() {
  Telemetry::counterAdd("robust.cache_insert_dropped");
}

/// Retained footprint of a web. Borrowed entry lists (index-reconstructed
/// webs) alias the trace's bytes and are already accounted on the trace
/// entry, so only owning lists count here; the per-view fixed state and a
/// hash-index slot per view always do.
uint64_t webBytes(const ViewWeb &W) {
  uint64_t Bytes = static_cast<uint64_t>(W.numViews()) * (sizeof(View) + 48);
  for (const View &V : W.views())
    if (!V.Entries.borrowed())
      Bytes += V.Entries.byteSize();
  return Bytes;
}

uint64_t correlationBytes(const ViewWeb &Left, const ViewWeb &Right,
                          const ViewCorrelation &X) {
  return (Left.numViews() + Right.numViews()) * sizeof(int32_t) +
         X.threadPairs().size() * sizeof(std::pair<uint32_t, uint32_t>);
}

} // namespace

struct DiffCache::Impl {
  enum class Kind { Trace, Web, Correlation };

  struct LoadKey {
    uint64_t Digest = 0;
    const StringInterner *Interner = nullptr;
    bool operator==(const LoadKey &O) const {
      return Digest == O.Digest && Interner == O.Interner;
    }
  };
  struct LoadKeyHash {
    size_t operator()(const LoadKey &K) const {
      return std::hash<uint64_t>()(K.Digest) ^
             (std::hash<const void *>()(K.Interner) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct CorrKey {
    const ViewWeb *Left = nullptr;
    const ViewWeb *Right = nullptr;
    bool operator==(const CorrKey &O) const {
      return Left == O.Left && Right == O.Right;
    }
  };
  struct CorrKeyHash {
    size_t operator()(const CorrKey &K) const {
      return std::hash<const void *>()(K.Left) ^
             (std::hash<const void *>()(K.Right) * 0x9e3779b97f4a7c15ull);
    }
  };

  struct Entry {
    Kind K = Kind::Trace;
    uint64_t Bytes = 0;

    // Kind::Trace
    LoadKey LKey;
    std::shared_ptr<const Trace> T;

    // Kind::Web. TracePin is set when the keyed trace is cache-loaded: it
    // keeps the trace (and the file bytes the web's borrowed columns alias)
    // alive past the trace entry's own eviction, which also rules out a
    // later allocation reusing the key address while this entry exists.
    const Trace *WebKey = nullptr;
    std::shared_ptr<const ViewWeb> Web;
    std::shared_ptr<const Trace> TracePin;

    // Kind::Correlation. The web pins keep the two keyed webs alive for as
    // long as the entry exists, so the pointer key can never alias a later
    // web allocation (and a hit with the same still-alive webs stays
    // legitimate even after the web entries themselves were evicted).
    CorrKey CKey;
    std::shared_ptr<const ViewCorrelation> Corr;
    std::shared_ptr<const ViewWeb> WebPinLeft;
    std::shared_ptr<const ViewWeb> WebPinRight;
  };

  using List = std::list<Entry>;

  uint64_t MaxBytes;
  uint64_t TotalBytes = 0;
  List Lru; ///< Front = most recently used.
  std::unordered_map<LoadKey, List::iterator, LoadKeyHash> LoadMap;
  std::unordered_map<const Trace *, List::iterator> TraceByPtr;
  std::unordered_map<const Trace *, List::iterator> WebMap;
  std::unordered_map<CorrKey, List::iterator, CorrKeyHash> CorrMap;
  mutable std::mutex Mu;

  explicit Impl(uint64_t Max) : MaxBytes(Max) {}

  void touch(List::iterator It) { Lru.splice(Lru.begin(), Lru, It); }

  /// Removes one entry. Eviction never cascades: webs keep their traces
  /// alive via TracePin, correlations keep their webs via the web pins, so
  /// no entry's pointer key can dangle or be reused while it is cached.
  void erase(List::iterator It) {
    switch (It->K) {
    case Kind::Trace:
      LoadMap.erase(It->LKey);
      TraceByPtr.erase(It->T.get());
      break;
    case Kind::Web:
      WebMap.erase(It->WebKey);
      break;
    case Kind::Correlation:
      CorrMap.erase(It->CKey);
      break;
    }
    TotalBytes -= It->Bytes;
    Lru.erase(It);
  }

  /// Evicts from the cold end until the budget holds, never touching the
  /// just-inserted entry (a single oversized payload stays cached alone).
  void evict(List::iterator Keep) {
    while (TotalBytes > MaxBytes && Lru.size() > 1) {
      List::iterator Victim = std::prev(Lru.end());
      if (Victim == Keep) {
        if (Victim == Lru.begin())
          break;
        Victim = std::prev(Victim);
      }
      erase(Victim);
    }
  }

  List::iterator insertFront(Entry E) {
    Lru.push_front(std::move(E));
    TotalBytes += Lru.front().Bytes;
    return Lru.begin();
  }
};

DiffCache::DiffCache(uint64_t MaxBytes)
    : M(std::make_unique<Impl>(MaxBytes)) {}

DiffCache::~DiffCache() = default;

DiffCache &DiffCache::global() {
  static DiffCache G;
  return G;
}

std::shared_ptr<const Trace>
DiffCache::load(const std::string &Path,
                std::shared_ptr<StringInterner> Strings, Err *Error) {
  Expected<uint64_t> Digest = traceFileDigest(Path);
  if (!Digest) {
    if (Error)
      *Error = Digest.error();
    return nullptr;
  }
  Impl::LoadKey Key{*Digest, Strings.get()};
  {
    std::lock_guard<std::mutex> Lock(M->Mu);
    auto It = M->LoadMap.find(Key);
    if (It != M->LoadMap.end()) {
      Telemetry::counterAdd("load.cache.hit");
      M->touch(It->second);
      return It->second->T;
    }
  }
  Telemetry::counterAdd("load.cache.miss");
  Expected<Trace> Loaded = readTrace(Path, std::move(Strings));
  if (!Loaded) {
    if (Error)
      *Error = Loaded.error();
    return nullptr;
  }
  auto T = std::make_shared<const Trace>(Loaded.take());

  std::lock_guard<std::mutex> Lock(M->Mu);
  // A racing load of the same file may have filled the slot meanwhile;
  // keep the incumbent so every caller shares one object.
  auto It = M->LoadMap.find(Key);
  if (It != M->LoadMap.end()) {
    M->touch(It->second);
    return It->second->T;
  }
  if (FaultInjector::fire(FaultSite::CacheInsert)) {
    countInsertDropped();
    return T; // Uncached: every later load re-reads the file.
  }
  Impl::Entry E;
  E.K = Impl::Kind::Trace;
  E.Bytes = T->storageBytes() + T->ViewIdx.byteSize();
  E.LKey = Key;
  E.T = T;
  int Step = 0;
  Impl::List::iterator Pos;
  try {
    Pos = M->insertFront(std::move(E));
    Step = 1;
    M->LoadMap.emplace(Key, Pos);
    Step = 2;
    M->TraceByPtr.emplace(T.get(), Pos);
    Step = 3;
  } catch (const std::bad_alloc &) {
    // Roll back the partial insert so the cache's maps, list, and byte
    // accounting stay consistent, then serve the load uncached.
    if (Step >= 2)
      M->LoadMap.erase(Key);
    if (Step >= 1) {
      M->TotalBytes -= Pos->Bytes;
      M->Lru.erase(Pos);
    }
    countInsertDropped();
    return T;
  }
  M->evict(Pos);
  return T;
}

std::shared_ptr<const ViewWeb> DiffCache::web(const Trace &T, ThreadPool *Pool,
                                              bool UseIndex) {
  {
    std::lock_guard<std::mutex> Lock(M->Mu);
    auto It = M->WebMap.find(&T);
    if (It != M->WebMap.end()) {
      Telemetry::counterAdd("web.cache.hit");
      M->touch(It->second);
      return It->second->Web;
    }
  }
  Telemetry::counterAdd("web.cache.miss");
  auto W = std::make_shared<const ViewWeb>(T, Pool, UseIndex);

  std::lock_guard<std::mutex> Lock(M->Mu);
  auto It = M->WebMap.find(&T);
  if (It != M->WebMap.end()) {
    M->touch(It->second);
    return It->second->Web;
  }
  if (FaultInjector::fire(FaultSite::CacheInsert)) {
    countInsertDropped();
    return W; // Uncached: the next request rebuilds the web.
  }
  Impl::Entry E;
  E.K = Impl::Kind::Web;
  E.Bytes = webBytes(*W);
  E.WebKey = &T;
  E.Web = W;
  auto TraceIt = M->TraceByPtr.find(&T);
  if (TraceIt != M->TraceByPtr.end())
    E.TracePin = TraceIt->second->T;
  bool Listed = false;
  Impl::List::iterator Pos;
  try {
    Pos = M->insertFront(std::move(E));
    Listed = true;
    M->WebMap.emplace(&T, Pos);
  } catch (const std::bad_alloc &) {
    if (Listed) {
      M->TotalBytes -= Pos->Bytes;
      M->Lru.erase(Pos);
    }
    countInsertDropped();
    return W;
  }
  M->evict(Pos);
  return W;
}

std::shared_ptr<const ViewCorrelation>
DiffCache::correlation(const ViewWeb &Left, const ViewWeb &Right) {
  Impl::CorrKey Key{&Left, &Right};
  {
    std::lock_guard<std::mutex> Lock(M->Mu);
    auto It = M->CorrMap.find(Key);
    if (It != M->CorrMap.end()) {
      Telemetry::counterAdd("correlate.cache.hit");
      M->touch(It->second);
      return It->second->Corr;
    }
  }
  Telemetry::counterAdd("correlate.cache.miss");
  auto X = std::make_shared<const ViewCorrelation>(Left, Right);

  std::lock_guard<std::mutex> Lock(M->Mu);
  auto It = M->CorrMap.find(Key);
  if (It != M->CorrMap.end()) {
    M->touch(It->second);
    return It->second->Corr;
  }
  if (FaultInjector::fire(FaultSite::CacheInsert)) {
    countInsertDropped();
    return X; // Uncached: the next request recorrelates.
  }
  Impl::Entry E;
  E.K = Impl::Kind::Correlation;
  E.Bytes = correlationBytes(Left, Right, *X);
  E.CKey = Key;
  E.Corr = X;
  // Pin cache-owned webs against eviction-then-reallocation under our key.
  auto LeftIt = M->WebMap.find(&Left.trace());
  if (LeftIt != M->WebMap.end() && LeftIt->second->Web.get() == &Left)
    E.WebPinLeft = LeftIt->second->Web;
  auto RightIt = M->WebMap.find(&Right.trace());
  if (RightIt != M->WebMap.end() && RightIt->second->Web.get() == &Right)
    E.WebPinRight = RightIt->second->Web;
  bool Listed = false;
  Impl::List::iterator Pos;
  try {
    Pos = M->insertFront(std::move(E));
    Listed = true;
    M->CorrMap.emplace(Key, Pos);
  } catch (const std::bad_alloc &) {
    if (Listed) {
      M->TotalBytes -= Pos->Bytes;
      M->Lru.erase(Pos);
    }
    countInsertDropped();
    return X;
  }
  M->evict(Pos);
  return X;
}

void DiffCache::clear() {
  std::lock_guard<std::mutex> Lock(M->Mu);
  M->LoadMap.clear();
  M->TraceByPtr.clear();
  M->WebMap.clear();
  M->CorrMap.clear();
  M->Lru.clear();
  M->TotalBytes = 0;
}

uint64_t DiffCache::bytes() const {
  std::lock_guard<std::mutex> Lock(M->Mu);
  return M->TotalBytes;
}

size_t DiffCache::numEntries() const {
  std::lock_guard<std::mutex> Lock(M->Mu);
  return M->Lru.size();
}

DiffResult rprism::cachedViewsDiff(const Trace &Left, const Trace &Right,
                                   const ViewsDiffOptions &Options,
                                   DiffCache &Cache) {
  TelemetrySpan Span("views-diff");
  // Mirrors the uncached trace-level viewsDiff: one pool for web builds and
  // evaluation, the chosen worker count recorded as a gauge. Webs and the
  // correlation come through the cache; a hit skips the corresponding
  // build, a miss takes exactly the uncached path — DiffResult bytes and
  // compare-op totals are identical either way, for every jobs value.
  unsigned Jobs = effectiveDiffJobs(Options, Left.size() + Right.size());
  Telemetry::gaugeMax("diff.effective_jobs", static_cast<double>(Jobs));
  ThreadPool Pool(Jobs);
  std::shared_ptr<const ViewWeb> LeftWeb =
      Cache.web(Left, &Pool, Options.UseViewIndex);
  std::shared_ptr<const ViewWeb> RightWeb =
      Cache.web(Right, &Pool, Options.UseViewIndex);
  std::shared_ptr<const ViewCorrelation> X =
      Cache.correlation(*LeftWeb, *RightWeb);
  return viewsDiff(*LeftWeb, *RightWeb, *X, Options, &Pool);
}

NWayResult rprism::cachedNWayDiff(const Trace &Base,
                                  const std::vector<const Trace *> &Mutants,
                                  const ViewsDiffOptions &Options,
                                  DiffCache &Cache) {
  NWayProviders Providers;
  Providers.Web = [&Cache](const Trace &T, ThreadPool *Pool, bool UseIndex) {
    return Cache.web(T, Pool, UseIndex);
  };
  Providers.Correlation = [&Cache](const ViewWeb &L, const ViewWeb &R) {
    return Cache.correlation(L, R);
  };
  return nwayDiff(Base, Mutants, Options, Providers);
}
