//===- cache/DiffCache.h - Digest-keyed LRU cache for repeat diffs --------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression cause analysis (§6) is a repeat-diff workload: the same
/// passing/failing traces are differenced again and again as the user
/// iterates, and batch diffs share a baseline side. DiffCache amortizes
/// the three rebuildable stages across those repeats, in process:
///
///   traces        — keyed by (file content digest, interner), so N pairs
///                   sharing a baseline load and fingerprint it once;
///   view webs     — keyed by trace identity, so each side's web is built
///                   (or reconstructed from its persisted ViewIndex) at
///                   most once;
///   correlations  — keyed by the web pair, self-contained result vectors.
///
/// Entries live in one LRU list bounded by a byte budget; evicting a
/// trace also evicts the webs and correlations derived from it, and a
/// cached web pins its cache-loaded trace so borrowed entry columns never
/// outlive their backing bytes.
///
/// Lifetime contract: a trace or web passed in from *outside* the cache
/// (not obtained from load()/web()) is keyed by address and must outlive
/// the cache — use a scoped DiffCache whose lifetime is contained in the
/// traces' (analyzeRegression does this), or the process-lifetime
/// global() with traces the cache itself loaded.
///
/// Cache hits and misses are counted (`web.cache.{hit,miss}`,
/// `correlate.cache.{hit,miss}`, `load.cache.{hit,miss}`). The counts are
/// jobs-invariant — cache behavior does not depend on the worker count —
/// so they stay inside the determinism contract for counters. The cache
/// never changes results: hits return exactly what the miss path would
/// rebuild (byte-identical reports, identical compare-op totals).
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_CACHE_DIFFCACHE_H
#define RPRISM_CACHE_DIFFCACHE_H

#include "diff/NWayDiff.h"
#include "diff/ViewsDiff.h"
#include "support/Expected.h"

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace rprism {

class DiffCache {
public:
  /// Default byte budget for the payloads an instance retains.
  static constexpr uint64_t DefaultMaxBytes = uint64_t{1} << 30;

  explicit DiffCache(uint64_t MaxBytes = DefaultMaxBytes);
  ~DiffCache();
  DiffCache(const DiffCache &) = delete;
  DiffCache &operator=(const DiffCache &) = delete;

  /// Process-wide instance used by the rprism tool (`--no-view-cache`
  /// bypasses it).
  static DiffCache &global();

  /// Loads the trace at \p Path through the cache: the file's content
  /// digest plus the interner identity form the key, so re-loading the
  /// same bytes (same path or a copy) into the same interner returns the
  /// already-loaded trace without reading, validating, or fingerprinting
  /// it again. Returns null on error (the typed diagnostic — class, code,
  /// message — in \p Error).
  std::shared_ptr<const Trace> load(const std::string &Path,
                                    std::shared_ptr<StringInterner> Strings,
                                    Err *Error = nullptr);

  /// The view web of \p T, built on first request (with \p Pool /
  /// \p UseIndex, see ViewWeb) and returned from cache afterwards.
  std::shared_ptr<const ViewWeb> web(const Trace &T,
                                     ThreadPool *Pool = nullptr,
                                     bool UseIndex = true);

  /// The view correlation of (\p Left, \p Right), computed on first
  /// request. The result is self-contained (plain index vectors), so it
  /// stays valid even after the webs are gone.
  std::shared_ptr<const ViewCorrelation> correlation(const ViewWeb &Left,
                                                     const ViewWeb &Right);

  /// Drops every entry.
  void clear();

  uint64_t bytes() const;   ///< Current payload bytes retained.
  size_t numEntries() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

/// Drop-in replacement for the trace-level viewsDiff convenience overload
/// that obtains webs and the correlation through \p Cache. First call per
/// pair builds everything (cold); repeats skip web build and correlation
/// (warm). The DiffResult — report bytes and compare-op totals — is
/// identical to the uncached path for every jobs value.
DiffResult cachedViewsDiff(const Trace &Left, const Trace &Right,
                           const ViewsDiffOptions &Options, DiffCache &Cache);

/// 1-vs-N variational diff with webs and correlations routed through
/// \p Cache (the NWayProviders hook): the baseline web is built at most
/// once across repeated studies, and mutants re-used between calls skip
/// their web builds too. Results are identical to the uncached nwayDiff.
NWayResult cachedNWayDiff(const Trace &Base,
                          const std::vector<const Trace *> &Mutants,
                          const ViewsDiffOptions &Options, DiffCache &Cache);

} // namespace rprism

#endif // RPRISM_CACHE_DIFFCACHE_H
