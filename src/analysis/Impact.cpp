//===- analysis/Impact.cpp ------------------------------------------------===//

#include "analysis/Impact.h"

#include <sstream>

using namespace rprism;

namespace {

/// One closure round: every entry of every frontier view contributes its
/// method and objects; returns true when something new was found.
bool expandOnce(const ViewWeb &Web, ImpactSet &Set,
                const ImpactOptions &Options) {
  const Trace &T = Web.trace();
  bool Grew = false;

  auto AddMethod = [&](Symbol Method) {
    if (Options.ExcludeHubs.count(T.Strings->text(Method)))
      return;
    Grew |= Set.Methods.insert(Method.Id).second;
  };
  auto AddObject = [&](const ObjRepr &Obj) {
    if (!Obj.isNone())
      Grew |= Set.Objects.insert(Obj.Loc).second;
  };

  // Methods -> objects they touch.
  for (uint32_t MethodSym : Set.Methods) {
    const View *MV = Web.methodView(Symbol{MethodSym});
    if (!MV)
      continue;
    for (uint32_t Eid : MV->Entries) {
      AddObject(T.Targets[Eid]);
      AddObject(T.Selfs[Eid]);
    }
  }

  // Objects -> methods that touch them (executing context of every entry
  // in the target-object view, plus callee names of calls on the object).
  for (uint32_t Loc : std::set<uint32_t>(Set.Objects)) {
    const View *OV = Web.targetObjectView(Loc);
    if (!OV)
      continue;
    for (uint32_t Eid : OV->Entries) {
      AddMethod(T.Methods[Eid]);
      if (T.kind(Eid) == EventKind::Call)
        AddMethod(T.Names[Eid]);
    }
  }
  return Grew;
}

ImpactSet closeOver(const ViewWeb &Web, ImpactSet Set,
                    const ImpactOptions &Options) {
  for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
    ++Set.Rounds;
    if (!expandOnce(Web, Set, Options))
      break;
  }
  return Set;
}

} // namespace

std::string ImpactSet::render(const Trace &T) const {
  std::ostringstream OS;
  OS << "impact set (" << Rounds << " round(s)): " << Methods.size()
     << " method(s), " << Objects.size() << " object(s)\n";
  OS << "  methods:";
  for (uint32_t Sym : Methods)
    OS << ' ' << T.Strings->text(Symbol{Sym});

  // Resolve object locations to their Class-seq names via any entry that
  // targets them.
  std::ostringstream ObjectsOS;
  std::set<uint32_t> Pending(Objects);
  for (const ObjRepr &Target : T.Targets) {
    if (Pending.empty())
      break;
    if (!Target.isNone() && Pending.erase(Target.Loc))
      ObjectsOS << ' ' << T.renderObj(Target);
  }
  OS << "\n  objects:" << ObjectsOS.str();
  for (uint32_t Loc : Pending)
    OS << " loc" << Loc; // Never targeted: raw location.
  OS << '\n';
  return OS.str();
}

ImpactSet rprism::impactOfMethod(const ViewWeb &Web, Symbol QualifiedMethod,
                                 const ImpactOptions &Options) {
  ImpactSet Seed;
  Seed.Methods.insert(QualifiedMethod.Id);
  if (const View *MV = Web.methodView(QualifiedMethod))
    Seed.SeedEntries = MV->size();
  return closeOver(Web, std::move(Seed), Options);
}

ImpactSet rprism::impactOfEntries(const ViewWeb &Web,
                                  const std::vector<uint32_t> &Eids,
                                  const ImpactOptions &Options) {
  const Trace &T = Web.trace();
  ImpactSet Seed;
  Seed.SeedEntries = Eids.size();
  for (uint32_t Eid : Eids) {
    Seed.Methods.insert(T.Methods[Eid].Id);
    if (!T.Targets[Eid].isNone())
      Seed.Objects.insert(T.Targets[Eid].Loc);
    if (!T.Selfs[Eid].isNone())
      Seed.Objects.insert(T.Selfs[Eid].Loc);
  }
  return closeOver(Web, std::move(Seed), Options);
}
