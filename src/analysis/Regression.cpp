//===- analysis/Regression.cpp --------------------------------------------===//

#include "analysis/Regression.h"

#include "cache/DiffCache.h"
#include "support/Hashing.h"
#include "support/Telemetry.h"

#include <optional>
#include <sstream>
#include <unordered_map>

using namespace rprism;

namespace {

/// Version-stable content key of one differing trace entry (read from the
/// columns). `SideTag` distinguishes original-version from new-version
/// differences when matching A against B.
uint64_t diffContentKey(const Trace &T, uint32_t Eid, bool NewSide) {
  uint64_t H = hashCombine(static_cast<uint64_t>(T.Kinds[Eid]),
                           T.Names[Eid].Id, NewSide ? 0x4eULL : 0x0aULL);
  // Target object: class plus version-stable identity.
  const ObjRepr &Target = T.Targets[Eid];
  H = hashMix(H, Target.ClassName.Id);
  H = hashMix(H, Target.HasRepr ? Target.ValueHash : Target.CreationSeq);
  const ValueRepr &Value = T.Values[Eid];
  H = hashMix(H, static_cast<uint64_t>(Value.Kind));
  H = hashMix(H, Value.Hash);
  const ValueRepr *Arg = T.args(Eid);
  for (uint32_t N = T.numArgs(Eid); N != 0; --N, ++Arg) {
    H = hashMix(H, static_cast<uint64_t>(Arg->Kind));
    H = hashMix(H, Arg->Hash);
  }
  // Context: the executing method (not the receiver object — too volatile).
  H = hashMix(H, T.Methods[Eid].Id);
  return H;
}

/// Multiset of content keys of all differences in one diff result.
std::unordered_map<uint64_t, uint32_t> diffKeyCounts(const DiffResult &D) {
  std::unordered_map<uint64_t, uint32_t> Counts;
  for (uint32_t Eid = 0; Eid != D.LeftSimilar.size(); ++Eid)
    if (!D.LeftSimilar[Eid])
      ++Counts[diffContentKey(*D.Left, Eid, /*NewSide=*/false)];
  for (uint32_t Eid = 0; Eid != D.RightSimilar.size(); ++Eid)
    if (!D.RightSimilar[Eid])
      ++Counts[diffContentKey(*D.Right, Eid, /*NewSide=*/true)];
  return Counts;
}

DiffResult runDiff(const Trace &Left, const Trace &Right,
                   const RegressionOptions &Options, DiffCache *Cache) {
  if (Options.Engine == DiffEngineKind::Lcs)
    return lcsDiff(Left, Right, Options.Lcs);
  if (Cache)
    return cachedViewsDiff(Left, Right, Options.Views, *Cache);
  return viewsDiff(Left, Right, Options.Views);
}

} // namespace

RegressionReport rprism::analyzeRegression(const RegressionInputs &Inputs,
                                           const RegressionOptions &Options) {
  RegressionReport Report;
  // Scoped cache for the three diffs: its lifetime is contained in the
  // input traces', so the address-keyed web entries stay valid. NewRegr's
  // web carries from A into C and NewOk's from B into C — two of the six
  // web builds become hits.
  std::optional<DiffCache> Cache;
  if (Options.Engine == DiffEngineKind::Views && Options.UseDiffCache)
    Cache.emplace();
  DiffCache *CachePtr = Cache ? &*Cache : nullptr;
  {
    TelemetrySpan S("diff-a");
    Report.A = runDiff(*Inputs.OrigRegr, *Inputs.NewRegr, Options, CachePtr);
  }
  {
    TelemetrySpan S("diff-b");
    Report.B = runDiff(*Inputs.OrigOk, *Inputs.NewOk, Options, CachePtr);
  }
  {
    TelemetrySpan S("diff-c");
    Report.C = runDiff(*Inputs.NewOk, *Inputs.NewRegr, Options, CachePtr);
  }
  TelemetrySpan CandidateSpan("candidate-set");

  Report.Stats.CompareOps = Report.A.Stats.CompareOps +
                            Report.B.Stats.CompareOps +
                            Report.C.Stats.CompareOps;
  Report.Stats.Seconds =
      Report.A.Stats.Seconds + Report.B.Stats.Seconds + Report.C.Stats.Seconds;
  Report.Stats.PeakBytes =
      std::max(std::max(Report.A.Stats.PeakBytes, Report.B.Stats.PeakBytes),
               Report.C.Stats.PeakBytes);
  Report.Stats.OutOfMemory = Report.A.Stats.OutOfMemory ||
                             Report.B.Stats.OutOfMemory ||
                             Report.C.Stats.OutOfMemory;
  Report.OutOfMemory = Report.Stats.OutOfMemory;

  Report.sizeA = Report.A.numDiffs();
  Report.sizeB = Report.B.numDiffs();
  Report.sizeC = Report.C.numDiffs();

  Report.DLeft.assign(Inputs.OrigRegr->size(), false);
  Report.DRight.assign(Inputs.NewRegr->size(), false);
  if (Report.OutOfMemory)
    return Report; // No candidate set computable.

  // ---- A - B: subtract expected differences by content key (multiset). --
  std::unordered_map<uint64_t, uint32_t> Expected = diffKeyCounts(Report.B);
  auto SurvivesB = [&Expected](uint64_t Key) {
    auto It = Expected.find(Key);
    if (It == Expected.end() || It->second == 0)
      return true;
    --It->second; // Consume one expected occurrence.
    return false;
  };

  // ---- ∩ C (or - C): C's differences on the new/regr run, as a content-
  // key multiset. A and C flag the same *semantic* difference but not
  // necessarily the same entry instance (the two diffs align the shared
  // run against different partners), so membership is by content key, with
  // an exact-entry-id fast path. Original-side differences cannot appear
  // in C.
  const bool Removal = Options.CodeRemoval;
  std::unordered_map<uint64_t, uint32_t> RegrKeys;
  for (uint32_t Eid = 0; Eid != Report.C.RightSimilar.size(); ++Eid)
    if (!Report.C.RightSimilar[Eid])
      ++RegrKeys[diffContentKey(*Report.C.Right, Eid, /*NewSide=*/true)];
  auto InC = [&Report, &RegrKeys](uint32_t Eid, uint64_t Key) {
    if (Eid < Report.C.RightSimilar.size() && !Report.C.RightSimilar[Eid])
      return true; // Same entry of the shared new/regr run.
    auto It = RegrKeys.find(Key);
    if (It == RegrKeys.end() || It->second == 0)
      return false;
    --It->second; // Consume one matching C difference.
    return true;
  };

  for (uint32_t Eid = 0; Eid != Report.DLeft.size(); ++Eid) {
    if (Report.A.LeftSimilar[Eid])
      continue;
    uint64_t Key = diffContentKey(*Report.A.Left, Eid, /*NewSide=*/false);
    if (!SurvivesB(Key))
      continue;
    // Orig-side differences: dropped by ∩C, kept by -C.
    Report.DLeft[Eid] = Removal;
  }
  for (uint32_t Eid = 0; Eid != Report.DRight.size(); ++Eid) {
    if (Report.A.RightSimilar[Eid])
      continue;
    uint64_t Key = diffContentKey(*Report.A.Right, Eid, /*NewSide=*/true);
    if (!SurvivesB(Key))
      continue;
    Report.DRight[Eid] = Removal ? !InC(Eid, Key) : InC(Eid, Key);
  }

  for (bool Flag : Report.DLeft)
    Report.sizeD += Flag;
  for (bool Flag : Report.DRight)
    Report.sizeD += Flag;

  // ---- Regression-related difference sequences of A. ----
  for (uint32_t I = 0; I != Report.A.Sequences.size(); ++I) {
    const DiffSequence &Seq = Report.A.Sequences[I];
    bool Related = false;
    for (uint32_t Eid : Seq.LeftEids)
      Related = Related || Report.DLeft[Eid];
    for (uint32_t Eid : Seq.RightEids)
      Related = Related || Report.DRight[Eid];
    if (Related)
      Report.RegressionSequences.push_back(I);
  }
  if (Telemetry::enabled()) {
    Telemetry::counterAdd("analyze.size_a", Report.sizeA);
    Telemetry::counterAdd("analyze.size_b", Report.sizeB);
    Telemetry::counterAdd("analyze.size_c", Report.sizeC);
    Telemetry::counterAdd("analyze.size_d", Report.sizeD);
    Telemetry::counterAdd("analyze.regression_sequences",
                          Report.RegressionSequences.size());
  }
  return Report;
}

std::string RegressionReport::render(size_t MaxSequences,
                                     size_t MaxEntries) const {
  std::ostringstream OS;
  OS << "regression analysis: |A|=" << sizeA << " |B|=" << sizeB
     << " |C|=" << sizeC << " |D|=" << sizeD << "\n"
     << A.Sequences.size() << " difference sequence(s), "
     << RegressionSequences.size() << " identified as regression-related\n";
  if (OutOfMemory) {
    OS << "(differencing ran out of memory; no candidate set)\n";
    return OS.str();
  }
  size_t Shown = 0;
  for (uint32_t Index : RegressionSequences) {
    if (Shown++ == MaxSequences) {
      OS << "  ...\n";
      break;
    }
    const DiffSequence &Seq = A.Sequences[Index];
    OS << "  regression sequence (thread " << Seq.LeftTid << "):\n";
    size_t N = 0;
    for (uint32_t Eid : Seq.LeftEids) {
      if (N++ == MaxEntries) {
        OS << "    - ...\n";
        break;
      }
      OS << "    - " << A.Left->renderEntry(Eid)
         << (DLeft[Eid] ? "   [D]" : "") << '\n';
    }
    N = 0;
    for (uint32_t Eid : Seq.RightEids) {
      if (N++ == MaxEntries) {
        OS << "    + ...\n";
        break;
      }
      OS << "    + " << A.Right->renderEntry(Eid)
         << (DRight[Eid] ? "   [D]" : "") << '\n';
    }
  }
  return OS.str();
}

RegressionScore
rprism::scoreReport(const RegressionReport &Report,
                    const std::vector<GroundTruthChange> &Truth) {
  RegressionScore Score;
  Score.ReportedSequences =
      static_cast<unsigned>(Report.RegressionSequences.size());

  auto EntryMatchesChange = [&](const Trace &T, uint32_t Eid, bool NewSide,
                                const GroundTruthChange &Change) {
    const auto &Nodes = NewSide ? Change.NewNodes : Change.OrigNodes;
    if (Nodes.count(T.Provs[Eid]))
      return true;
    if (Change.Methods.count(T.Strings->text(T.Methods[Eid])))
      return true;
    // A call/return naming the changed method also counts (the call site
    // observes the change).
    EventKind Kind = T.kind(Eid);
    if ((Kind == EventKind::Call || Kind == EventKind::Return) &&
        Change.Methods.count(T.Strings->text(T.Names[Eid])))
      return true;
    return false;
  };

  auto SequenceMatchesChange = [&](const DiffSequence &Seq,
                                   const GroundTruthChange &Change) {
    for (uint32_t Eid : Seq.LeftEids)
      if (EntryMatchesChange(*Report.A.Left, Eid, /*NewSide=*/false,
                             Change))
        return true;
    for (uint32_t Eid : Seq.RightEids)
      if (EntryMatchesChange(*Report.A.Right, Eid, /*NewSide=*/true,
                             Change))
        return true;
    return false;
  };

  std::vector<bool> ChangeCovered(Truth.size(), false);
  for (uint32_t Index : Report.RegressionSequences) {
    const DiffSequence &Seq = Report.A.Sequences[Index];
    bool MatchedCause = false;
    bool MatchedEffect = false;
    for (size_t CI = 0; CI != Truth.size(); ++CI) {
      if (!SequenceMatchesChange(Seq, Truth[CI]))
        continue;
      ChangeCovered[CI] = true;
      MatchedCause = MatchedCause || Truth[CI].RegressionRelated;
      MatchedEffect = MatchedEffect || Truth[CI].EffectRelated;
    }
    if (MatchedCause)
      ++Score.TruePositives;
    else if (MatchedEffect)
      ++Score.EffectRelated;
    else
      ++Score.FalsePositives;
  }
  for (size_t CI = 0; CI != Truth.size(); ++CI)
    if (Truth[CI].RegressionRelated && !ChangeCovered[CI])
      ++Score.FalseNegatives;
  return Score;
}
