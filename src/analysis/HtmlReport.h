//===- analysis/HtmlReport.h - Self-contained HTML diff reports ---------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders DiffResult / RegressionReport as a single self-contained HTML
/// page: side-by-side difference sequences with full dynamic context, D
/// markers for regression candidates, and summary counters. The paper's
/// contribution 3 promises "a full semantic 'diff' between the original
/// and new versions, allowing these potential causes to be viewed in
/// their full context, with dynamic state" — this is that artifact in a
/// form a developer opens in a browser.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ANALYSIS_HTMLREPORT_H
#define RPRISM_ANALYSIS_HTMLREPORT_H

#include "analysis/Regression.h"
#include "diff/DiffResult.h"
#include "diff/NWayDiff.h"

#include <string>

namespace rprism {

/// Options for report rendering.
struct HtmlReportOptions {
  std::string Title = "RPrism semantic diff";
  size_t MaxSequences = 200;
  size_t MaxEntriesPerSide = 40;
};

/// The page for a plain two-trace diff.
std::string renderHtmlDiff(const DiffResult &Result,
                           const HtmlReportOptions &Options =
                               HtmlReportOptions());

/// The page for a full regression analysis: only the regression-related
/// sequences are expanded; D entries are highlighted.
std::string renderHtmlReport(const RegressionReport &Report,
                             const HtmlReportOptions &Options =
                                 HtmlReportOptions());

/// The page for a 1-vs-N variational diff: the agreement summary,
/// divergence-site clusters with their member mutants, and each divergent
/// mutant's difference sequences (agreeing mutants collapse to one line).
std::string renderHtmlNWay(const NWayResult &Result,
                           const HtmlReportOptions &Options =
                               HtmlReportOptions());

/// Writes \p Html to \p Path; false on I/O failure.
bool writeHtmlFile(const std::string &Html, const std::string &Path);

} // namespace rprism

#endif // RPRISM_ANALYSIS_HTMLREPORT_H
