//===- analysis/Protocol.h - Object protocol inference over views ---------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One of the dynamic analyses §4 envisions on top of the views trace
/// abstraction: *object protocol inference* and typestate-style checking.
/// For every class, the target-object views of a trace give each
/// instance's lifetime event sequence; projecting those to method calls
/// yields a per-class protocol automaton (states = last method called,
/// transitions observed with multiplicities). A second trace can then be
/// checked against the mined automaton: transitions never observed in the
/// reference trace are protocol violations — drift detection across
/// versions for free, because views correlate the objects.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ANALYSIS_PROTOCOL_H
#define RPRISM_ANALYSIS_PROTOCOL_H

#include "views/Views.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rprism {

/// A mined per-class protocol: the observed method-call transition
/// relation over all instances of the class.
struct ProtocolAutomaton {
  Symbol ClassName;
  unsigned NumObjects = 0; ///< Instances the protocol was mined from.

  /// Start symbol of every object's life (object creation).
  static constexpr uint32_t StartState = 0; // Symbol 0 = "".

  /// (from method symbol, to method symbol) -> observation count. The
  /// start state uses symbol 0.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Transitions;

  /// Methods observed as the last call on some instance.
  std::set<uint32_t> FinalMethods;

  /// True when the (From -> To) transition was ever observed.
  bool allows(Symbol From, Symbol To) const {
    return Transitions.count({From.Id, To.Id}) != 0;
  }

  /// Renders the automaton ("<start> -> push x12", ...).
  std::string render(const StringInterner &Strings) const;
};

/// Options for protocol mining.
struct ProtocolOptions {
  /// Minimum instances of a class before a protocol is mined for it
  /// (single-instance protocols overfit).
  unsigned MinObjects = 1;
  /// Include constructor "<init>" calls as protocol steps.
  bool IncludeCtor = false;
};

/// Mines one automaton per class from the target-object views of \p Web.
std::vector<ProtocolAutomaton>
inferProtocols(const ViewWeb &Web,
               const ProtocolOptions &Options = ProtocolOptions());

/// A transition in \p Subject absent from the mined reference protocol.
struct ProtocolViolation {
  Symbol ClassName;
  Symbol FromMethod; ///< Symbol 0 for "object creation".
  Symbol ToMethod;
  uint32_t Eid = 0;    ///< Entry of the violating call in the subject.
  uint32_t Count = 0;  ///< Occurrences of this transition.
};

/// Checks \p Subject against protocols mined from a reference trace.
/// Classes unknown to the reference are skipped (new classes are version
/// evolution, not protocol violations). Both traces must share an
/// interner.
std::vector<ProtocolViolation>
checkProtocols(const std::vector<ProtocolAutomaton> &Reference,
               const ViewWeb &Subject,
               const ProtocolOptions &Options = ProtocolOptions());

/// Renders violations for reports.
std::string renderViolations(const std::vector<ProtocolViolation> &Violations,
                             const Trace &Subject);

} // namespace rprism

#endif // RPRISM_ANALYSIS_PROTOCOL_H
