//===- analysis/HtmlReport.cpp ------------------------------------------------===//

#include "analysis/HtmlReport.h"

#include "support/Telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace rprism;

namespace {

std::string escapeHtml(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '&': Out += "&amp;"; break;
    case '<': Out += "&lt;"; break;
    case '>': Out += "&gt;"; break;
    case '"': Out += "&quot;"; break;
    default: Out.push_back(C);
    }
  }
  return Out;
}

const char *PageHead = R"(<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%TITLE%</title><style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         font-size: 13px; margin: 1.5em; background: #fafafa; }
  h1 { font-size: 18px; } h2 { font-size: 14px; margin-bottom: 4px; }
  .summary { background: #fff; border: 1px solid #ddd; padding: 8px 12px;
             border-radius: 6px; display: inline-block; }
  table.seq { border-collapse: collapse; margin: 8px 0 18px;
              background: #fff; border: 1px solid #ddd; width: 100%; }
  table.seq td { padding: 2px 8px; vertical-align: top; width: 50%;
                 white-space: pre-wrap; }
  td.old { background: #ffecec; } td.new { background: #eaffea; }
  td.empty { background: #f4f4f4; }
  .eid { color: #999; margin-right: 6px; }
  .dmark { background: #ffd54d; border-radius: 3px; padding: 0 4px;
           margin-left: 6px; font-weight: bold; }
  .meta { color: #666; }
  details.telemetry { margin-top: 18px; }
  details.telemetry summary { cursor: pointer; color: #666; }
  table.telemetry { border-collapse: collapse; margin: 8px 0;
                    background: #fff; border: 1px solid #ddd; }
  table.telemetry th, table.telemetry td { padding: 2px 10px;
                    border-bottom: 1px solid #eee; text-align: left; }
  table.telemetry td.num { text-align: right; }
</style></head><body>
)";

void openPage(std::ostringstream &OS, const std::string &Title) {
  std::string Head = PageHead;
  std::string Escaped = escapeHtml(Title);
  size_t Pos = Head.find("%TITLE%");
  Head.replace(Pos, 7, Escaped);
  OS << Head << "<h1>" << Escaped << "</h1>\n";
}

void renderEntryCell(std::ostringstream &OS, const Trace &T, uint32_t Eid,
                     bool IsD) {
  OS << "<span class=\"eid\">[" << Eid << "]</span>"
     << escapeHtml(T.renderEntry(Eid));
  if (IsD)
    OS << "<span class=\"dmark\">D</span>";
  OS << "\n";
}

/// One sequence as a two-column table row block.
void renderSequence(std::ostringstream &OS, const Trace &Left,
                    const Trace &Right, const DiffSequence &Seq,
                    const std::vector<bool> *DLeft,
                    const std::vector<bool> *DRight, size_t MaxEntries) {
  OS << "<table class=\"seq\"><tr>";
  auto Side = [&](const Trace &T, const std::vector<uint32_t> &Eids,
                  const std::vector<bool> *DFlags, const char *Class) {
    if (Eids.empty()) {
      OS << "<td class=\"empty\"></td>";
      return;
    }
    OS << "<td class=\"" << Class << "\">";
    size_t Shown = 0;
    for (uint32_t Eid : Eids) {
      if (Shown++ == MaxEntries) {
        OS << "&hellip; (" << (Eids.size() - MaxEntries) << " more)\n";
        break;
      }
      renderEntryCell(OS, T, Eid, DFlags && (*DFlags)[Eid]);
    }
    OS << "</td>";
  };
  Side(Left, Seq.LeftEids, DLeft, "old");
  Side(Right, Seq.RightEids, DRight, "new");
  OS << "</tr></table>\n";
}

/// A collapsible "Run telemetry" section with stage spans and counters.
/// Rendered only when telemetry is enabled and has data — reports from
/// uninstrumented runs are unchanged.
void renderTelemetrySection(std::ostringstream &OS) {
  if (!Telemetry::enabled())
    return;
  TelemetrySnapshot Snap = Telemetry::get().snapshot();
  if (Snap.empty())
    return;
  OS << "<details class=\"telemetry\"><summary>Run telemetry</summary>\n";
  if (!Snap.Spans.empty()) {
    OS << "<table class=\"telemetry\"><tr><th>stage</th><th>count</th>"
       << "<th>total ms</th><th>self ms</th></tr>\n";
    for (const SpanStat &S : Snap.Spans) {
      char Total[32], Self[32];
      std::snprintf(Total, sizeof(Total), "%.3f",
                    static_cast<double>(S.TotalNanos) / 1e6);
      std::snprintf(Self, sizeof(Self), "%.3f",
                    static_cast<double>(S.SelfNanos) / 1e6);
      OS << "<tr><td>" << escapeHtml(S.Path) << "</td><td class=\"num\">"
         << S.Count << "</td><td class=\"num\">" << Total
         << "</td><td class=\"num\">" << Self << "</td></tr>\n";
    }
    OS << "</table>\n";
  }
  if (!Snap.Counters.empty()) {
    OS << "<table class=\"telemetry\"><tr><th>counter</th><th>value</th>"
       << "</tr>\n";
    for (const auto &[Name, Value] : Snap.Counters)
      OS << "<tr><td>" << escapeHtml(Name) << "</td><td class=\"num\">"
         << Value << "</td></tr>\n";
    if (double Rate = Snap.traceProductionRate(); Rate > 0)
      OS << "<tr><td>vm-run entries/sec (derived)</td><td class=\"num\">"
         << static_cast<uint64_t>(Rate) << "</td></tr>\n";
    OS << "</table>\n";
  }
  // Distribution quantiles (bucket-bound estimates, deterministic like
  // the counters above).
  bool AnyHist = false;
  for (const auto &[Name, Hist] : Snap.Histograms)
    AnyHist = AnyHist || Hist.total() != 0;
  if (AnyHist) {
    OS << "<table class=\"telemetry\"><tr><th>distribution</th><th>n</th>"
       << "<th>p50&le;</th><th>p95&le;</th><th>p99&le;</th></tr>\n";
    for (const auto &[Name, Hist] : Snap.Histograms) {
      if (Hist.total() == 0)
        continue;
      char P50[32], P95[32], P99[32];
      std::snprintf(P50, sizeof(P50), "%g", Hist.quantile(0.50));
      std::snprintf(P95, sizeof(P95), "%g", Hist.quantile(0.95));
      std::snprintf(P99, sizeof(P99), "%g", Hist.quantile(0.99));
      OS << "<tr><td>" << escapeHtml(Name) << "</td><td class=\"num\">"
         << Hist.total() << "</td><td class=\"num\">" << P50
         << "</td><td class=\"num\">" << P95 << "</td><td class=\"num\">"
         << P99 << "</td></tr>\n";
    }
    OS << "</table>\n";
  }
  OS << "</details>\n";
}

} // namespace

std::string rprism::renderHtmlDiff(const DiffResult &Result,
                                   const HtmlReportOptions &Options) {
  std::ostringstream OS;
  openPage(OS, Options.Title);
  OS << "<div class=\"summary\">" << Result.numDiffs()
     << " semantic differences in " << Result.Sequences.size()
     << " sequence(s) &middot; " << Result.Stats.CompareOps
     << " compare ops</div>\n";

  size_t Shown = 0;
  for (const DiffSequence &Seq : Result.Sequences) {
    if (Shown++ == Options.MaxSequences) {
      OS << "<p class=\"meta\">&hellip; "
         << (Result.Sequences.size() - Options.MaxSequences)
         << " more sequences</p>\n";
      break;
    }
    OS << "<h2>sequence #" << Shown - 1 << " <span class=\"meta\">(thread "
       << Seq.LeftTid << ", -" << Seq.LeftEids.size() << " / +"
       << Seq.RightEids.size() << ")</span></h2>\n";
    renderSequence(OS, *Result.Left, *Result.Right, Seq, nullptr, nullptr,
                   Options.MaxEntriesPerSide);
  }
  renderTelemetrySection(OS);
  OS << "</body></html>\n";
  return OS.str();
}

std::string rprism::renderHtmlReport(const RegressionReport &Report,
                                     const HtmlReportOptions &Options) {
  std::ostringstream OS;
  openPage(OS, Options.Title);
  OS << "<div class=\"summary\">|A|=" << Report.sizeA << " |B|="
     << Report.sizeB << " |C|=" << Report.sizeC << " |D|=" << Report.sizeD
     << " &middot; " << Report.RegressionSequences.size()
     << " regression-related sequence(s) of " << Report.A.Sequences.size()
     << "</div>\n";
  if (Report.OutOfMemory) {
    OS << "<p>differencing ran out of memory; no candidate set</p>"
       << "</body></html>\n";
    return OS.str();
  }

  size_t Shown = 0;
  for (uint32_t Index : Report.RegressionSequences) {
    if (Shown++ == Options.MaxSequences)
      break;
    const DiffSequence &Seq = Report.A.Sequences[Index];
    OS << "<h2>regression sequence (A-sequence #" << Index
       << ") <span class=\"meta\">(thread " << Seq.LeftTid << ")</span>"
       << "</h2>\n";
    renderSequence(OS, *Report.A.Left, *Report.A.Right, Seq, &Report.DLeft,
                   &Report.DRight, Options.MaxEntriesPerSide);
  }
  renderTelemetrySection(OS);
  OS << "</body></html>\n";
  return OS.str();
}

std::string rprism::renderHtmlNWay(const NWayResult &Result,
                                   const HtmlReportOptions &Options) {
  std::ostringstream OS;
  openPage(OS, Options.Title);
  OS << "<div class=\"summary\">1 baseline ("
     << (Result.Base ? Result.Base->size() : 0) << " entries) vs "
     << Result.Mutants.size() << " mutant(s) &middot; "
     << Result.NumAgreeing << " agree, "
     << (Result.Mutants.size() - Result.NumAgreeing) << " diverge in "
     << Result.Clusters.size() << " cluster(s) &middot; "
     << Result.totalCompareOps() << " compare ops</div>\n";

  if (!Result.Clusters.empty()) {
    OS << "<h2>divergence clusters</h2>\n<table class=\"telemetry\">"
       << "<tr><th>cluster</th><th>site</th><th>mutants</th></tr>\n";
    size_t Index = 0;
    for (const NWayCluster &C : Result.Clusters) {
      OS << "<tr><td class=\"num\">#" << Index++ << "</td><td>thread "
         << C.SiteTid;
      if (C.SiteEid != UINT32_MAX)
        OS << ", eid " << C.SiteEid;
      OS << " &mdash; " << escapeHtml(C.Site) << "</td><td>";
      for (size_t M : C.Mutants)
        OS << " #" << M;
      OS << "</td></tr>\n";
    }
    OS << "</table>\n";
  }

  for (const NWayMutantReport &M : Result.Mutants) {
    OS << "<h2>mutant #" << M.Index << " <span class=\"meta\">(";
    if (M.Agrees) {
      OS << "agrees with baseline";
      if (M.LanesIdentical)
        OS << ", lanes bit-identical";
      OS << ")</span></h2>\n";
      continue;
    }
    OS << M.Result.numDiffs() << " differences in "
       << M.Result.Sequences.size() << " sequence(s), diverges "
       << escapeHtml(M.Site) << ")</span></h2>\n";
    size_t Shown = 0;
    for (const DiffSequence &Seq : M.Result.Sequences) {
      if (Shown++ == Options.MaxSequences) {
        OS << "<p class=\"meta\">&hellip; "
           << (M.Result.Sequences.size() - Options.MaxSequences)
           << " more sequences</p>\n";
        break;
      }
      renderSequence(OS, *M.Result.Left, *M.Result.Right, Seq, nullptr,
                     nullptr, Options.MaxEntriesPerSide);
    }
  }
  renderTelemetrySection(OS);
  OS << "</body></html>\n";
  return OS.str();
}

bool rprism::writeHtmlFile(const std::string &Html,
                           const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Html;
  return static_cast<bool>(Out);
}
