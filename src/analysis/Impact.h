//===- analysis/Impact.h - Impact analysis over the web of views ----------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Another §4-envisioned analysis: *impact analysis* via the linked views.
/// Starting from a seed (a method, or a set of trace entries such as a
/// regression candidate sequence), the analysis alternates between view
/// types: a method's view names the objects it touches; an object's
/// target view names the methods that touch it. The transitive closure —
/// with a bounded number of alternations — is the dynamic impact set: the
/// slice of the program's abstractions the seed interacts with.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ANALYSIS_IMPACT_H
#define RPRISM_ANALYSIS_IMPACT_H

#include "views/Views.h"

#include <set>
#include <string>

namespace rprism {

/// The computed impact set.
struct ImpactSet {
  std::set<uint32_t> Methods; ///< Method symbols (qualified names).
  std::set<uint32_t> Objects; ///< Object locations (within the trace).
  size_t SeedEntries = 0;
  unsigned Rounds = 0; ///< Alternations until the closure was reached.

  std::string render(const Trace &T) const;
};

struct ImpactOptions {
  /// Maximum method<->object alternations; the closure usually settles in
  /// 2-4 rounds on realistic traces.
  unsigned MaxRounds = 8;
  /// Hub methods excluded from the closure: a program's entry point
  /// touches almost every object, so expanding through it degenerates the
  /// impact set to "everything".
  std::set<std::string> ExcludeHubs = {"main"};
};

/// Impact of one method (by qualified name).
ImpactSet impactOfMethod(const ViewWeb &Web, Symbol QualifiedMethod,
                         const ImpactOptions &Options = ImpactOptions());

/// Impact of an arbitrary entry set (e.g. the entries of a regression
/// candidate sequence).
ImpactSet impactOfEntries(const ViewWeb &Web,
                          const std::vector<uint32_t> &Eids,
                          const ImpactOptions &Options = ImpactOptions());

} // namespace rprism

#endif // RPRISM_ANALYSIS_IMPACT_H
