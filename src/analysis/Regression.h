//===- analysis/Regression.h - Regression cause analysis (§4) -------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4 algorithm. Given four runs — original and new program versions,
/// each on a regressing and a similar non-regressing test input — three
/// trace diffs are computed:
///
///   A = diff(orig/regr-input, new/regr-input)  suspected differences
///   B = diff(orig/ok-input,   new/ok-input)    expected differences
///   C = diff(new/ok-input,    new/regr-input)  regression differences
///
/// and the candidate set is  D = (A - B) ∩ C,  or  D = (A - B) - C  for
/// regressions caused by *removed* code (whose differences live on the
/// original-version side and can never appear in C).
///
/// A - B matches differences across different trace pairs by a *content
/// key* (event structure + version-stable value representations + context
/// method, with multiset occurrence semantics). ∩ C exploits that A and C
/// share the new/regr-input run: the harness reuses one trace object, so
/// membership is exact by entry id.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_ANALYSIS_REGRESSION_H
#define RPRISM_ANALYSIS_REGRESSION_H

#include "diff/Lcs.h"
#include "diff/ViewsDiff.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace rprism {

/// The four traces the analysis consumes. NewRegr is shared between the A
/// and C diffs (same version, same input — and runs are deterministic).
struct RegressionInputs {
  const Trace *OrigOk = nullptr;
  const Trace *OrigRegr = nullptr;
  const Trace *NewOk = nullptr;
  const Trace *NewRegr = nullptr;
};

/// Which differencing semantics drives the analysis.
enum class DiffEngineKind : uint8_t { Views, Lcs };

struct RegressionOptions {
  DiffEngineKind Engine = DiffEngineKind::Views;
  ViewsDiffOptions Views;
  LcsDiffOptions Lcs;
  /// Code-removal mode: D = (A - B) - C (§4.1's variant).
  bool CodeRemoval = false;
  /// Views engine only: route the three diffs through a scoped DiffCache so
  /// the traces shared between them (NewOk in B and C, NewRegr in A and C)
  /// have their view webs built once instead of twice. Results are
  /// identical either way (`rprism --no-view-cache` turns this off).
  bool UseDiffCache = true;
};

/// Result of the analysis.
struct RegressionReport {
  DiffResult A; ///< orig/regr vs new/regr.
  DiffResult B; ///< orig/ok vs new/ok.
  DiffResult C; ///< new/ok vs new/regr.

  /// D membership, over the entries of A's traces. DLeft indexes the
  /// orig/regr trace, DRight the new/regr trace.
  std::vector<bool> DLeft;
  std::vector<bool> DRight;

  /// Indices into A.Sequences identified as regression-related (they
  /// contain at least one D entry).
  std::vector<uint32_t> RegressionSequences;

  uint64_t sizeA = 0; ///< |A| in differences.
  uint64_t sizeB = 0;
  uint64_t sizeC = 0;
  uint64_t sizeD = 0;

  bool OutOfMemory = false; ///< Any of the three diffs failed (LCS engine).

  /// Total differencing cost across the three diffs.
  DiffStats Stats;

  /// Renders the regression-related sequences with full dynamic context.
  std::string render(size_t MaxSequences = 10, size_t MaxEntries = 10) const;
};

/// Runs the full analysis.
RegressionReport analyzeRegression(const RegressionInputs &Inputs,
                                   const RegressionOptions &Options =
                                       RegressionOptions());

//===----------------------------------------------------------------------===//
// Ground-truth scoring (used by the evaluation harness, not the analysis)
//===----------------------------------------------------------------------===//

/// One known change between the versions (injected by the mutator or
/// documented for the authored benchmark pairs).
struct GroundTruthChange {
  std::string Description;
  bool RegressionRelated = false; ///< True for the regression cause itself.
  /// True for known downstream *effects* of the regression (e.g. the
  /// wrong output being produced). The paper treats effect sequences as
  /// regression-related but distinguishes them from causes ("the other
  /// difference was related to the effect of the regression", §5.2).
  bool EffectRelated = false;
  /// Qualified method names whose behavior the change affects.
  std::unordered_set<std::string> Methods;
  /// AST node ids of changed constructs, per version (provenance match).
  std::unordered_set<uint32_t> OrigNodes;
  std::unordered_set<uint32_t> NewNodes;
};

/// Accuracy accounting in the style of Table 1.
struct RegressionScore {
  unsigned ReportedSequences = 0; ///< |RegressionSequences|.
  unsigned TruePositives = 0;     ///< Reported sequences tied to the cause.
  unsigned EffectRelated = 0;     ///< Tied to a known downstream effect.
  unsigned FalsePositives = 0;    ///< Tied to nothing regression-related.
  unsigned FalseNegatives = 0;    ///< Cause changes missed entirely.

  /// Table 1's "Regression Diff. Seqs.": causes plus effects.
  unsigned regressionRelated() const { return TruePositives + EffectRelated; }
};

/// Scores a report against ground truth: a reported sequence is a true
/// positive when one of its entries matches a regression *cause* (by
/// provenance node id or by context/callee method name), effect-related
/// when it only matches a known effect, and a false positive otherwise.
RegressionScore scoreReport(const RegressionReport &Report,
                            const std::vector<GroundTruthChange> &Truth);

} // namespace rprism

#endif // RPRISM_ANALYSIS_REGRESSION_H
