//===- analysis/Protocol.cpp ----------------------------------------------===//

#include "analysis/Protocol.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

using namespace rprism;

namespace {

/// Extracts the per-instance method-call sequence from a target-object
/// view: the Call events targeting the object, in trace order. `new`
/// (Init) marks the start; the optional ctor call is filtered unless
/// requested.
std::vector<Symbol> callSequence(const Trace &T, const View &V,
                                 bool IncludeCtor) {
  std::vector<Symbol> Calls;
  for (uint32_t Eid : V.Entries) {
    if (T.kind(Eid) != EventKind::Call)
      continue;
    Symbol Callee = T.Names[Eid];
    if (!IncludeCtor) {
      const std::string &Name = T.Strings->text(Callee);
      if (Name.size() >= 6 &&
          Name.compare(Name.size() - 6, 6, "<init>") == 0)
        continue;
    }
    Calls.push_back(Callee);
  }
  return Calls;
}

/// Per-class accumulation state during mining.
struct ClassAccum {
  ProtocolAutomaton Auto;
};

} // namespace

std::string ProtocolAutomaton::render(const StringInterner &Strings) const {
  std::ostringstream OS;
  OS << "protocol " << Strings.text(ClassName) << " (" << NumObjects
     << " instance" << (NumObjects == 1 ? "" : "s") << "):\n";
  for (const auto &[Edge, Count] : Transitions) {
    auto [From, To] = Edge;
    OS << "  "
       << (From == StartState ? std::string("<new>")
                              : Strings.text(Symbol{From}))
       << " -> " << Strings.text(Symbol{To}) << "  x" << Count << '\n';
  }
  if (!FinalMethods.empty()) {
    OS << "  final:";
    for (uint32_t Sym : FinalMethods)
      OS << ' ' << Strings.text(Symbol{Sym});
    OS << '\n';
  }
  return OS.str();
}

std::vector<ProtocolAutomaton>
rprism::inferProtocols(const ViewWeb &Web, const ProtocolOptions &Options) {
  const Trace &T = Web.trace();
  std::unordered_map<uint32_t, ClassAccum> ByClass;

  for (const View &V : Web.views()) {
    if (V.Type != ViewType::TargetObject)
      continue;
    Symbol Class = V.FirstRepr.ClassName;
    ClassAccum &Accum = ByClass[Class.Id];
    Accum.Auto.ClassName = Class;
    ++Accum.Auto.NumObjects;

    std::vector<Symbol> Calls = callSequence(T, V, Options.IncludeCtor);
    uint32_t Prev = ProtocolAutomaton::StartState;
    for (Symbol Call : Calls) {
      ++Accum.Auto.Transitions[{Prev, Call.Id}];
      Prev = Call.Id;
    }
    if (Prev != ProtocolAutomaton::StartState)
      Accum.Auto.FinalMethods.insert(Prev);
  }

  std::vector<ProtocolAutomaton> Result;
  for (auto &[ClassId, Accum] : ByClass) {
    if (Accum.Auto.NumObjects < Options.MinObjects)
      continue;
    Result.push_back(std::move(Accum.Auto));
  }
  // Deterministic order: by class symbol id.
  std::sort(Result.begin(), Result.end(),
            [](const ProtocolAutomaton &A, const ProtocolAutomaton &B) {
              return A.ClassName < B.ClassName;
            });
  return Result;
}

std::vector<ProtocolViolation>
rprism::checkProtocols(const std::vector<ProtocolAutomaton> &Reference,
                       const ViewWeb &Subject,
                       const ProtocolOptions &Options) {
  const Trace &T = Subject.trace();
  std::unordered_map<uint32_t, const ProtocolAutomaton *> ByClass;
  for (const ProtocolAutomaton &Auto : Reference)
    ByClass.emplace(Auto.ClassName.Id, &Auto);

  // Deduplicate violations per (class, from, to); keep the first site.
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, ProtocolViolation>
      Found;

  for (const View &V : Subject.views()) {
    if (V.Type != ViewType::TargetObject)
      continue;
    auto It = ByClass.find(V.FirstRepr.ClassName.Id);
    if (It == ByClass.end())
      continue; // Unknown class: evolution, not violation.
    const ProtocolAutomaton &Auto = *It->second;

    uint32_t Prev = ProtocolAutomaton::StartState;
    for (uint32_t Eid : V.Entries) {
      if (T.kind(Eid) != EventKind::Call)
        continue;
      Symbol Callee = T.Names[Eid];
      if (!Options.IncludeCtor) {
        const std::string &Name = T.Strings->text(Callee);
        if (Name.size() >= 6 &&
            Name.compare(Name.size() - 6, 6, "<init>") == 0)
          continue;
      }
      if (!Auto.allows(Symbol{Prev}, Callee)) {
        auto Key = std::make_tuple(Auto.ClassName.Id, Prev, Callee.Id);
        auto [Slot, Inserted] = Found.try_emplace(Key);
        if (Inserted) {
          Slot->second.ClassName = Auto.ClassName;
          Slot->second.FromMethod = Symbol{Prev};
          Slot->second.ToMethod = Callee;
          Slot->second.Eid = Eid;
        }
        ++Slot->second.Count;
      }
      Prev = Callee.Id;
    }
  }

  std::vector<ProtocolViolation> Result;
  Result.reserve(Found.size());
  for (auto &[Key, Violation] : Found)
    Result.push_back(Violation);
  return Result;
}

std::string
rprism::renderViolations(const std::vector<ProtocolViolation> &Violations,
                         const Trace &Subject) {
  std::ostringstream OS;
  if (Violations.empty()) {
    OS << "no protocol violations\n";
    return OS.str();
  }
  OS << Violations.size() << " protocol violation(s):\n";
  for (const ProtocolViolation &V : Violations) {
    OS << "  " << Subject.Strings->text(V.ClassName) << ": "
       << (V.FromMethod.empty() ? std::string("<new>")
                                : Subject.Strings->text(V.FromMethod))
       << " -> " << Subject.Strings->text(V.ToMethod) << " (x" << V.Count
       << "), first at [" << V.Eid << "] "
       << Subject.renderEntry(V.Eid) << '\n';
  }
  return OS.str();
}
