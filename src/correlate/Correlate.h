//===- correlate/Correlate.h - View correlation functions (§3.1) ----------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correlation functions X_nu decide whether a view in the left trace
/// semantically corresponds to a view in the right trace:
///
///   X_TH  threads: closest match on the spawning call stack of the thread
///         and its ancestors (exact ancestry-hash matches first, then a
///         similarity score over the spawn stacks; greedy assignment).
///   X_CM  methods: full qualified-signature equality.
///   X_TO / X_AO  objects: equal value representations (first or last
///         observed — representations evolve during a run) or equal
///         class-specific creation sequence numbers.
///
/// The paper stresses these are heuristics (§3.1); RPRISM additionally
/// *relaxes* method/object correlation during differencing using
/// context-sensitive anchor distances (§5) — that relaxation lives in the
/// diff module, which owns the anchor state.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_CORRELATE_CORRELATE_H
#define RPRISM_CORRELATE_CORRELATE_H

#include "views/Views.h"

#include <vector>

namespace rprism {

/// Precomputed bidirectional correlation between the views of two traces.
/// A view correlates with at most one view of the other trace.
class ViewCorrelation {
public:
  /// Builds the correlation for all view types. Both webs' traces must
  /// share one StringInterner (symbol ids compare directly).
  ViewCorrelation(const ViewWeb &Left, const ViewWeb &Right);

  /// Right view correlated with left view \p LeftId, or -1.
  int32_t rightOf(uint32_t LeftId) const { return LeftToRight[LeftId]; }

  /// Left view correlated with right view \p RightId, or -1.
  int32_t leftOf(uint32_t RightId) const { return RightToLeft[RightId]; }

  /// Correlated thread-view pairs (left id, right id), in left-tid order.
  /// These seed the views-based differencing (one evaluation per pair).
  const std::vector<std::pair<uint32_t, uint32_t>> &threadPairs() const {
    return ThreadPairs;
  }

private:
  void correlateThreads(const ViewWeb &Left, const ViewWeb &Right);
  void correlateMethods(const ViewWeb &Left, const ViewWeb &Right);
  void correlateObjects(const ViewWeb &Left, const ViewWeb &Right,
                        ViewType Type);
  void link(uint32_t LeftId, uint32_t RightId);

  std::vector<int32_t> LeftToRight;
  std::vector<int32_t> RightToLeft;
  std::vector<std::pair<uint32_t, uint32_t>> ThreadPairs;
};

/// Similarity in [0,1] between two thread ancestries: 1 for identical
/// hashes, otherwise the normalized LCS length of the spawn stacks (with a
/// bonus for equal entry methods). Exposed for tests.
double threadAncestrySimilarity(const Trace &LeftTrace,
                                const ThreadInfo &Left,
                                const Trace &RightTrace,
                                const ThreadInfo &Right);

} // namespace rprism

#endif // RPRISM_CORRELATE_CORRELATE_H
