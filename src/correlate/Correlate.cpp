//===- correlate/Correlate.cpp --------------------------------------------===//

#include "correlate/Correlate.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace rprism;

double rprism::threadAncestrySimilarity(const Trace &LeftTrace,
                                        const ThreadInfo &Left,
                                        const Trace &RightTrace,
                                        const ThreadInfo &Right) {
  (void)LeftTrace;
  (void)RightTrace;
  if (Left.AncestryHash == Right.AncestryHash)
    return 1.0;

  // Small quadratic LCS over spawn-stack symbols; spawn stacks are call
  // stacks, typically a handful of frames.
  const auto &A = Left.SpawnStack;
  const auto &B = Right.SpawnStack;
  size_t N = A.size();
  size_t M = B.size();
  double Score = 0;
  if (N != 0 && M != 0) {
    std::vector<uint32_t> Prev(M + 1, 0);
    std::vector<uint32_t> Cur(M + 1, 0);
    for (size_t I = 1; I <= N; ++I) {
      for (size_t J = 1; J <= M; ++J) {
        if (A[I - 1] == B[J - 1])
          Cur[J] = Prev[J - 1] + 1;
        else
          Cur[J] = std::max(Prev[J], Cur[J - 1]);
      }
      std::swap(Prev, Cur);
    }
    Score = static_cast<double>(Prev[M]) / static_cast<double>(std::max(N, M));
  } else if (N == M) {
    Score = 1.0; // Both roots (empty spawn stacks).
  }

  // Equal entry methods are a strong signal; weight them in.
  double EntryBonus = Left.EntryMethod == Right.EntryMethod ? 1.0 : 0.0;
  return 0.25 * EntryBonus + 0.7 * Score;
}

void ViewCorrelation::link(uint32_t LeftId, uint32_t RightId) {
  LeftToRight[LeftId] = static_cast<int32_t>(RightId);
  RightToLeft[RightId] = static_cast<int32_t>(LeftId);
}

void ViewCorrelation::correlateThreads(const ViewWeb &Left,
                                       const ViewWeb &Right) {
  const Trace &LT = Left.trace();
  const Trace &RT = Right.trace();

  // Score all pairs, then greedily take the best matches. Thread counts are
  // small (the Derby benchmark has 3), so quadratic scoring is fine.
  struct Cand {
    double Score;
    uint32_t LeftTid;
    uint32_t RightTid;
  };
  std::vector<Cand> Cands;
  for (const ThreadInfo &L : LT.Threads) {
    if (!Left.threadView(L.Tid))
      continue;
    for (const ThreadInfo &R : RT.Threads) {
      if (!Right.threadView(R.Tid))
        continue;
      double Score = threadAncestrySimilarity(LT, L, RT, R);
      if (Score > 0)
        Cands.push_back({Score, L.Tid, R.Tid});
    }
  }
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const Cand &A, const Cand &B) {
                     if (A.Score != B.Score)
                       return A.Score > B.Score;
                     if (A.LeftTid != B.LeftTid)
                       return A.LeftTid < B.LeftTid;
                     return A.RightTid < B.RightTid;
                   });

  std::vector<bool> LeftTaken(LT.Threads.size(), false);
  std::vector<bool> RightTaken(RT.Threads.size(), false);
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  for (const Cand &C : Cands) {
    if (LeftTaken[C.LeftTid] || RightTaken[C.RightTid])
      continue;
    LeftTaken[C.LeftTid] = true;
    RightTaken[C.RightTid] = true;
    const View *LV = Left.threadView(C.LeftTid);
    const View *RV = Right.threadView(C.RightTid);
    link(LV->Id, RV->Id);
    Pairs.emplace_back(LV->Id, RV->Id);
  }
  // Deterministic order: by left tid.
  std::sort(Pairs.begin(), Pairs.end(),
            [&Left](const auto &A, const auto &B) {
              return Left.view(A.first).Tid < Left.view(B.first).Tid;
            });
  ThreadPairs = std::move(Pairs);
}

void ViewCorrelation::correlateMethods(const ViewWeb &Left,
                                       const ViewWeb &Right) {
  // X_CM: equality of fully qualified names (shared interner: symbol ids
  // compare directly).
  for (const View &LV : Left.views()) {
    if (LV.Type != ViewType::Method)
      continue;
    if (const View *RV = Right.methodView(LV.MethodName))
      link(LV.Id, RV->Id);
  }
}

void ViewCorrelation::correlateObjects(const ViewWeb &Left,
                                       const ViewWeb &Right, ViewType Type) {
  // Index right object views by (class, value-hash) — both first and last
  // observed representations — and by (class, creation seq).
  auto HashKey = [](Symbol Class, uint64_t Hash) {
    return (static_cast<uint64_t>(Class.Id) << 32) ^ Hash;
  };
  auto SeqKey = [](Symbol Class, uint32_t Seq) {
    return (static_cast<uint64_t>(Class.Id) << 32) | Seq;
  };

  std::unordered_map<uint64_t, uint32_t> ByValueHash;
  std::unordered_map<uint64_t, uint32_t> BySeq;
  for (const View &RV : Right.views()) {
    if (RV.Type != Type)
      continue;
    // Final-state keys enter first: on hash collisions (e.g. several
    // instances sharing the pre-constructor default state), the more
    // informative representation owns the slot.
    if (RV.LastRepr.HasRepr)
      ByValueHash.try_emplace(
          HashKey(RV.LastRepr.ClassName, RV.LastRepr.ValueHash), RV.Id);
    if (RV.FirstRepr.HasRepr)
      ByValueHash.try_emplace(
          HashKey(RV.FirstRepr.ClassName, RV.FirstRepr.ValueHash), RV.Id);
    BySeq.try_emplace(SeqKey(RV.FirstRepr.ClassName, RV.FirstRepr.CreationSeq),
                      RV.Id);
  }

  auto TryLink = [this](uint32_t LeftId, uint32_t RightId) {
    // First match wins; a right view correlates with at most one left view.
    if (LeftToRight[LeftId] >= 0 || RightToLeft[RightId] >= 0)
      return false;
    link(LeftId, RightId);
    return true;
  };

  // Pass 1: value-representation matches (the stronger signal). The
  // *final* state leads: the first observed representation is usually the
  // pre-constructor default, which collides across all instances of a
  // class and would pair swapped-creation-order objects wrongly
  // (CorrelateEdge.SwappedCreationOrderResolvedByValueReprs).
  for (const View &LV : Left.views()) {
    if (LV.Type != Type)
      continue;
    if (LV.LastRepr.HasRepr) {
      auto It = ByValueHash.find(
          HashKey(LV.LastRepr.ClassName, LV.LastRepr.ValueHash));
      if (It != ByValueHash.end() && TryLink(LV.Id, It->second))
        continue;
    }
    if (LV.FirstRepr.HasRepr) {
      auto It = ByValueHash.find(
          HashKey(LV.FirstRepr.ClassName, LV.FirstRepr.ValueHash));
      if (It != ByValueHash.end())
        TryLink(LV.Id, It->second);
    }
  }
  // Pass 2: creation-sequence-number matches for the rest.
  for (const View &LV : Left.views()) {
    if (LV.Type != Type || LeftToRight[LV.Id] >= 0)
      continue;
    auto It = BySeq.find(
        SeqKey(LV.FirstRepr.ClassName, LV.FirstRepr.CreationSeq));
    if (It != BySeq.end())
      TryLink(LV.Id, It->second);
  }
}

ViewCorrelation::ViewCorrelation(const ViewWeb &Left, const ViewWeb &Right) {
  TelemetrySpan Span("correlate");
  LeftToRight.assign(Left.numViews(), -1);
  RightToLeft.assign(Right.numViews(), -1);
  correlateThreads(Left, Right);
  correlateMethods(Left, Right);
  correlateObjects(Left, Right, ViewType::TargetObject);
  correlateObjects(Left, Right, ViewType::ActiveObject);
  Telemetry::counterAdd("correlate.thread_pairs", ThreadPairs.size());
}
