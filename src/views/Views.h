//===- views/Views.h - Semantic views over traces (Fig. 7) ----------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic views: named projections over a trace that aggregate entries
/// sharing a semantic trait (§2.4). The four view types:
///
///   TH  thread views        — all events of one thread, in order
///   CM  method views        — events occurring while a given (fully
///                             qualified) method is on top of the call stack
///   TO  target object views — events whose target is a given object
///   AO  active object views — events whose *executing* receiver is a given
///                             object (it is on top of the call stack)
///
/// Views are *linked*: each view stores original entry indices, so any
/// entry can be navigated from its position in one view to its position in
/// every other view it belongs to — the "web" of views.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_VIEWS_VIEWS_H
#define RPRISM_VIEWS_VIEWS_H

#include "trace/Trace.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace rprism {

/// The four view types of §2.4.
enum class ViewType : uint8_t { Thread, Method, TargetObject, ActiveObject };

const char *viewTypeName(ViewType Type);

/// One view: its identity plus the (ascending) entry ids it contains.
/// Entries is a Column so a web reconstructed from a trace's persisted
/// ViewIndex borrows each view's list zero-copy out of the index's flat
/// entry column (which itself may borrow the mapped trace file); webs
/// built by scanning own their lists as before.
struct View {
  ViewType Type = ViewType::Thread;
  uint32_t Id = 0; ///< Dense id within the owning ViewWeb.
  Column<uint32_t> Entries; ///< Entry ids, ascending.

  // Identity, depending on Type:
  uint32_t Tid = 0;       ///< Thread views.
  Symbol MethodName;      ///< Method views (qualified name).
  uint32_t Loc = NoLoc;   ///< Object views (location within this trace).

  /// Object views: representations observed at the first and last events,
  /// used by the X_TO/X_AO correlation heuristics (an object's value
  /// representation evolves during the run, so both endpoints are kept).
  ObjRepr FirstRepr;
  ObjRepr LastRepr;

  size_t size() const { return Entries.size(); }
};

class ThreadPool;

/// The full web of views for one trace.
class ViewWeb {
public:
  /// Builds every view of \p T. The trace must outlive the web. Each of
  /// the four view families (thread, method, target-object, active-object)
  /// is built by an independent scan over the trace; with \p Pool the four
  /// scans run concurrently. View ids are dense and family-grouped (all
  /// thread views first, then method, target-object, active-object, each
  /// in order of first appearance) — identical with and without a pool.
  ///
  /// When \p UseIndex is set and the trace carries a current ViewIndex
  /// (loaded from an indexed v3 file or precomputed), the entry scans are
  /// skipped entirely: views are reconstructed from the index in O(views)
  /// with entry lists borrowed zero-copy, producing the identical web.
  explicit ViewWeb(const Trace &T, ThreadPool *Pool = nullptr,
                   bool UseIndex = true);

  const Trace &trace() const { return *T; }

  const View &view(uint32_t ViewId) const { return Views[ViewId]; }
  size_t numViews() const { return Views.size(); }

  size_t numThreadViews() const { return ThreadIndex.size(); }
  size_t numMethodViews() const { return MethodIndex.size(); }
  size_t numTargetObjectViews() const { return TargetIndex.size(); }
  size_t numActiveObjectViews() const { return ActiveIndex.size(); }

  /// Lookups; null when no such view exists.
  const View *threadView(uint32_t Tid) const;
  const View *methodView(Symbol QualName) const;
  const View *targetObjectView(uint32_t Loc) const;
  const View *activeObjectView(uint32_t Loc) const;

  /// All views containing entry \p Eid (the nu mappings of Fig. 7): its
  /// thread view, method view, target object view (if the event has a
  /// target), and active object view (if the context has a receiver).
  std::vector<uint32_t> viewsOf(uint32_t Eid) const;

  /// Position of \p Eid within \p V (index into V.Entries), or -1 when the
  /// entry is not a member. O(log n).
  static int64_t positionOf(const View &V, uint32_t Eid);

  /// Renders a view like the boxes of Fig. 2/13 (debugging/report aid).
  std::string render(const View &V, size_t MaxEntries = 50) const;

  /// Iterable list of all views.
  const std::vector<View> &views() const { return Views; }

private:
  /// Reconstructs every view from the trace's persisted ViewIndex:
  /// O(views) work, entry lists borrowed from the index's flat column.
  void buildFromIndex(const ViewIndex &Idx);

  const Trace *T;
  std::vector<View> Views;
  std::unordered_map<uint32_t, uint32_t> ThreadIndex; ///< tid -> view id.
  std::unordered_map<uint32_t, uint32_t> MethodIndex; ///< symbol -> view id.
  std::unordered_map<uint32_t, uint32_t> TargetIndex; ///< loc -> view id.
  std::unordered_map<uint32_t, uint32_t> ActiveIndex; ///< loc -> view id.
};

} // namespace rprism

#endif // RPRISM_VIEWS_VIEWS_H
