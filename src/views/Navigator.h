//===- views/Navigator.h - Cursor navigation through the view web ---------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "At any arbitrary point in any view, one can use these links to visit
/// all semantically related views" (§2.4). ViewCursor is that navigation
/// as an API: a (view, position) pair that can step within a view and
/// *jump* — same entry, different view type — across the web.
///
//===----------------------------------------------------------------------===//

#ifndef RPRISM_VIEWS_NAVIGATOR_H
#define RPRISM_VIEWS_NAVIGATOR_H

#include "views/Views.h"

#include <optional>

namespace rprism {

/// A position within one view of a ViewWeb. Valid as long as the web is.
class ViewCursor {
public:
  /// Places a cursor on entry \p Eid within its view of type \p Type;
  /// nullopt when the entry has no such view (e.g. a fork event has no
  /// target-object view).
  static std::optional<ViewCursor> at(const ViewWeb &Web, uint32_t Eid,
                                      ViewType Type);

  /// The entry under the cursor, materialized from the trace columns.
  TraceEntry entry() const {
    return Web->trace().entry(view().Entries[Pos]);
  }
  uint32_t eid() const { return view().Entries[Pos]; }

  const View &view() const { return Web->view(ViewId); }
  size_t position() const { return Pos; }

  /// Steps within the view; returns false (cursor unchanged) at the ends.
  bool next();
  bool prev();

  /// Jumps to the same entry in another of its views — the web link.
  std::optional<ViewCursor> jump(ViewType Type) const {
    return at(*Web, eid(), Type);
  }

  /// All views the current entry belongs to.
  std::vector<uint32_t> linkedViews() const {
    return Web->viewsOf(eid());
  }

private:
  ViewCursor(const ViewWeb &WebIn, uint32_t ViewIdIn, size_t PosIn)
      : Web(&WebIn), ViewId(ViewIdIn), Pos(PosIn) {}

  const ViewWeb *Web;
  uint32_t ViewId;
  size_t Pos;
};

} // namespace rprism

#endif // RPRISM_VIEWS_NAVIGATOR_H
