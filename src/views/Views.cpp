//===- views/Views.cpp ----------------------------------------------------===//

#include "views/Views.h"

#include <algorithm>
#include <sstream>

using namespace rprism;

const char *rprism::viewTypeName(ViewType Type) {
  switch (Type) {
  case ViewType::Thread:       return "thread";
  case ViewType::Method:       return "method";
  case ViewType::TargetObject: return "target-object";
  case ViewType::ActiveObject: return "active-object";
  }
  return "?";
}

/// True if the event kind carries a target object (FE/ME/KE events do;
/// fork/end do not).
static bool hasTargetObject(const Event &Ev) {
  switch (Ev.Kind) {
  case EventKind::FieldGet:
  case EventKind::FieldSet:
  case EventKind::Call:
  case EventKind::Return:
  case EventKind::Init:
    return !Ev.Target.isNone();
  case EventKind::Fork:
  case EventKind::End:
    return false;
  }
  return false;
}

uint32_t ViewWeb::getOrCreate(ViewType Type, uint64_t Key,
                              const TraceEntry &Entry) {
  std::unordered_map<uint32_t, uint32_t> *Index = nullptr;
  switch (Type) {
  case ViewType::Thread:       Index = &ThreadIndex; break;
  case ViewType::Method:       Index = &MethodIndex; break;
  case ViewType::TargetObject: Index = &TargetIndex; break;
  case ViewType::ActiveObject: Index = &ActiveIndex; break;
  }
  auto [It, Inserted] = Index->try_emplace(static_cast<uint32_t>(Key),
                                           static_cast<uint32_t>(Views.size()));
  if (!Inserted)
    return It->second;

  View V;
  V.Type = Type;
  V.Id = It->second;
  switch (Type) {
  case ViewType::Thread:
    V.Tid = static_cast<uint32_t>(Key);
    break;
  case ViewType::Method:
    V.MethodName = Symbol{static_cast<uint32_t>(Key)};
    break;
  case ViewType::TargetObject:
  case ViewType::ActiveObject:
    V.Loc = static_cast<uint32_t>(Key);
    V.FirstRepr = Type == ViewType::TargetObject ? Entry.Ev.Target
                                                 : Entry.Self;
    break;
  }
  Views.push_back(std::move(V));
  return It->second;
}

ViewWeb::ViewWeb(const Trace &TIn) : T(&TIn) {
  for (const TraceEntry &Entry : T->Entries) {
    // nu_TH: every entry belongs to its thread's view.
    uint32_t Tv = getOrCreate(ViewType::Thread, Entry.Tid, Entry);
    Views[Tv].Entries.push_back(Entry.Eid);

    // nu_CM: the (qualified) method on top of the call stack.
    uint32_t Mv = getOrCreate(ViewType::Method, Entry.Method.Id, Entry);
    Views[Mv].Entries.push_back(Entry.Eid);

    // nu_TO: the event's target object, when it has one.
    if (hasTargetObject(Entry.Ev)) {
      uint32_t Ov =
          getOrCreate(ViewType::TargetObject, Entry.Ev.Target.Loc, Entry);
      Views[Ov].Entries.push_back(Entry.Eid);
      Views[Ov].LastRepr = Entry.Ev.Target;
    }

    // nu_AO: the receiver of the executing method, when there is one.
    if (!Entry.Self.isNone()) {
      uint32_t Av =
          getOrCreate(ViewType::ActiveObject, Entry.Self.Loc, Entry);
      Views[Av].Entries.push_back(Entry.Eid);
      Views[Av].LastRepr = Entry.Self;
    }
  }
}

const View *ViewWeb::threadView(uint32_t Tid) const {
  auto It = ThreadIndex.find(Tid);
  return It == ThreadIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::methodView(Symbol QualName) const {
  auto It = MethodIndex.find(QualName.Id);
  return It == MethodIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::targetObjectView(uint32_t Loc) const {
  auto It = TargetIndex.find(Loc);
  return It == TargetIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::activeObjectView(uint32_t Loc) const {
  auto It = ActiveIndex.find(Loc);
  return It == ActiveIndex.end() ? nullptr : &Views[It->second];
}

std::vector<uint32_t> ViewWeb::viewsOf(uint32_t Eid) const {
  std::vector<uint32_t> Result;
  const TraceEntry &Entry = T->Entries[Eid];
  if (auto It = ThreadIndex.find(Entry.Tid); It != ThreadIndex.end())
    Result.push_back(It->second);
  if (auto It = MethodIndex.find(Entry.Method.Id); It != MethodIndex.end())
    Result.push_back(It->second);
  if (hasTargetObject(Entry.Ev))
    if (auto It = TargetIndex.find(Entry.Ev.Target.Loc);
        It != TargetIndex.end())
      Result.push_back(It->second);
  if (!Entry.Self.isNone())
    if (auto It = ActiveIndex.find(Entry.Self.Loc); It != ActiveIndex.end())
      Result.push_back(It->second);
  return Result;
}

int64_t ViewWeb::positionOf(const View &V, uint32_t Eid) {
  auto It = std::lower_bound(V.Entries.begin(), V.Entries.end(), Eid);
  if (It == V.Entries.end() || *It != Eid)
    return -1;
  return It - V.Entries.begin();
}

std::string ViewWeb::render(const View &V, size_t MaxEntries) const {
  std::ostringstream OS;
  OS << viewTypeName(V.Type) << " view ";
  switch (V.Type) {
  case ViewType::Thread:
    OS << "thread-" << V.Tid;
    break;
  case ViewType::Method:
    OS << T->Strings->text(V.MethodName);
    break;
  case ViewType::TargetObject:
  case ViewType::ActiveObject:
    OS << T->renderObj(V.FirstRepr);
    break;
  }
  OS << " (" << V.Entries.size() << " entries)\n";
  size_t Shown = 0;
  for (uint32_t Eid : V.Entries) {
    if (Shown++ == MaxEntries) {
      OS << "  ...\n";
      break;
    }
    OS << "  [" << Eid << "] " << T->renderEntry(T->Entries[Eid]) << '\n';
  }
  return OS.str();
}
