//===- views/Views.cpp ----------------------------------------------------===//

#include "views/Views.h"

#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <sstream>

using namespace rprism;

const char *rprism::viewTypeName(ViewType Type) {
  switch (Type) {
  case ViewType::Thread:       return "thread";
  case ViewType::Method:       return "method";
  case ViewType::TargetObject: return "target-object";
  case ViewType::ActiveObject: return "active-object";
  }
  return "?";
}

/// True if the event kind carries a target object (FE/ME/KE events do;
/// fork/end do not).
static bool hasTargetObject(const Event &Ev) {
  switch (Ev.Kind) {
  case EventKind::FieldGet:
  case EventKind::FieldSet:
  case EventKind::Call:
  case EventKind::Return:
  case EventKind::Init:
    return !Ev.Target.isNone();
  case EventKind::Fork:
  case EventKind::End:
    return false;
  }
  return false;
}

namespace {

/// One view family built by an independent scan: views in first-appearance
/// order with family-local ids. Keys (tids, interned symbol ids, store
/// locations) are small dense integers, so the key -> local-id map is a
/// direct-indexed vector — one bounds check + load per entry on the build
/// hot path instead of a hash probe. The web's hash index is built once
/// per family afterwards (O(views), not O(entries)).
struct FamilyBuild {
  std::vector<View> Views;
  std::vector<uint32_t> Dense; ///< key -> local id; ~0u = no view yet.

  View &getOrCreate(uint32_t Key) {
    if (Key >= Dense.size())
      Dense.resize(Key + 1, ~0u);
    uint32_t &Slot = Dense[Key];
    if (Slot == ~0u) {
      Slot = static_cast<uint32_t>(Views.size());
      Views.emplace_back();
    }
    return Views[Slot];
  }
};

/// nu_TH: every entry belongs to its thread's view.
FamilyBuild buildThreadFamily(const Trace &T) {
  FamilyBuild F;
  for (const TraceEntry &Entry : T.Entries) {
    View &V = F.getOrCreate(Entry.Tid);
    if (V.Entries.empty()) {
      V.Type = ViewType::Thread;
      V.Tid = Entry.Tid;
    }
    V.Entries.push_back(Entry.Eid);
  }
  return F;
}

/// nu_CM: the (qualified) method on top of the call stack.
FamilyBuild buildMethodFamily(const Trace &T) {
  FamilyBuild F;
  for (const TraceEntry &Entry : T.Entries) {
    View &V = F.getOrCreate(Entry.Method.Id);
    if (V.Entries.empty()) {
      V.Type = ViewType::Method;
      V.MethodName = Entry.Method;
    }
    V.Entries.push_back(Entry.Eid);
  }
  return F;
}

/// nu_TO: the event's target object, when it has one. LastRepr is filled
/// in one pass at the end (each view's last entry) rather than overwritten
/// per entry — the per-entry struct copy was measurable on long traces.
FamilyBuild buildTargetObjectFamily(const Trace &T) {
  FamilyBuild F;
  for (const TraceEntry &Entry : T.Entries) {
    if (!hasTargetObject(Entry.Ev))
      continue;
    View &V = F.getOrCreate(Entry.Ev.Target.Loc);
    if (V.Entries.empty()) {
      V.Type = ViewType::TargetObject;
      V.Loc = Entry.Ev.Target.Loc;
      V.FirstRepr = Entry.Ev.Target;
    }
    V.Entries.push_back(Entry.Eid);
  }
  for (View &V : F.Views)
    V.LastRepr = T.Entries[V.Entries.back()].Ev.Target;
  return F;
}

/// nu_AO: the receiver of the executing method, when there is one.
FamilyBuild buildActiveObjectFamily(const Trace &T) {
  FamilyBuild F;
  for (const TraceEntry &Entry : T.Entries) {
    if (Entry.Self.isNone())
      continue;
    View &V = F.getOrCreate(Entry.Self.Loc);
    if (V.Entries.empty()) {
      V.Type = ViewType::ActiveObject;
      V.Loc = Entry.Self.Loc;
      V.FirstRepr = Entry.Self;
    }
    V.Entries.push_back(Entry.Eid);
  }
  for (View &V : F.Views)
    V.LastRepr = T.Entries[V.Entries.back()].Self;
  return F;
}

/// Sequential path: all four families in ONE pass over the trace (the
/// entry array is the dominant memory traffic; four separate scans only
/// pay off when they run on different cores). Produces exactly what the
/// four independent builders produce.
void buildAllFamiliesFused(const Trace &T, FamilyBuild Families[4]) {
  for (const TraceEntry &Entry : T.Entries) {
    View &TV = Families[0].getOrCreate(Entry.Tid);
    if (TV.Entries.empty()) {
      TV.Type = ViewType::Thread;
      TV.Tid = Entry.Tid;
    }
    TV.Entries.push_back(Entry.Eid);

    View &MV = Families[1].getOrCreate(Entry.Method.Id);
    if (MV.Entries.empty()) {
      MV.Type = ViewType::Method;
      MV.MethodName = Entry.Method;
    }
    MV.Entries.push_back(Entry.Eid);

    if (hasTargetObject(Entry.Ev)) {
      View &OV = Families[2].getOrCreate(Entry.Ev.Target.Loc);
      if (OV.Entries.empty()) {
        OV.Type = ViewType::TargetObject;
        OV.Loc = Entry.Ev.Target.Loc;
        OV.FirstRepr = Entry.Ev.Target;
      }
      OV.Entries.push_back(Entry.Eid);
    }

    if (!Entry.Self.isNone()) {
      View &AV = Families[3].getOrCreate(Entry.Self.Loc);
      if (AV.Entries.empty()) {
        AV.Type = ViewType::ActiveObject;
        AV.Loc = Entry.Self.Loc;
        AV.FirstRepr = Entry.Self;
      }
      AV.Entries.push_back(Entry.Eid);
    }
  }
  for (View &V : Families[2].Views)
    V.LastRepr = T.Entries[V.Entries.back()].Ev.Target;
  for (View &V : Families[3].Views)
    V.LastRepr = T.Entries[V.Entries.back()].Self;
}

} // namespace

ViewWeb::ViewWeb(const Trace &TIn, ThreadPool *Pool) : T(&TIn) {
  // The four families are built by independent scans (each touches only
  // its own map and view list), so they parallelize without shared state;
  // the deterministic concatenation below assigns the same dense ids
  // regardless of completion order. Without workers the four scans fuse
  // into one pass.
  TelemetrySpan WebSpan("web-build");
  FamilyBuild Families[4];
  if (Pool && Pool->numWorkers() > 1) {
    Pool->submit([&] {
      TelemetrySpan S("thread");
      Families[0] = buildThreadFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("method");
      Families[1] = buildMethodFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("target-object");
      Families[2] = buildTargetObjectFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("active-object");
      Families[3] = buildActiveObjectFamily(*T);
    });
    Pool->wait();
  } else if (Telemetry::enabled()) {
    // Telemetry runs take the four separate scans sequentially so the
    // per-family spans exist (with identical paths) at --jobs 1 too. The
    // builders produce exactly what the fused pass produces.
    {
      TelemetrySpan S("thread");
      Families[0] = buildThreadFamily(*T);
    }
    {
      TelemetrySpan S("method");
      Families[1] = buildMethodFamily(*T);
    }
    {
      TelemetrySpan S("target-object");
      Families[2] = buildTargetObjectFamily(*T);
    }
    {
      TelemetrySpan S("active-object");
      Families[3] = buildActiveObjectFamily(*T);
    }
  } else {
    buildAllFamiliesFused(*T, Families);
  }

  std::unordered_map<uint32_t, uint32_t> *Indices[4] = {
      &ThreadIndex, &MethodIndex, &TargetIndex, &ActiveIndex};
  size_t Total = 0;
  for (const FamilyBuild &F : Families)
    Total += F.Views.size();
  Views.reserve(Total);
  for (size_t FI = 0; FI != 4; ++FI) {
    FamilyBuild &F = Families[FI];
    uint32_t Offset = static_cast<uint32_t>(Views.size());
    for (View &V : F.Views) {
      V.Id = Offset + static_cast<uint32_t>(&V - F.Views.data());
      Views.push_back(std::move(V));
    }
    Indices[FI]->reserve(F.Views.size());
    for (uint32_t Key = 0; Key != F.Dense.size(); ++Key)
      if (F.Dense[Key] != ~0u)
        Indices[FI]->emplace(Key, Offset + F.Dense[Key]);
  }
  Telemetry::counterAdd("web.views", Views.size());
}

const View *ViewWeb::threadView(uint32_t Tid) const {
  auto It = ThreadIndex.find(Tid);
  return It == ThreadIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::methodView(Symbol QualName) const {
  auto It = MethodIndex.find(QualName.Id);
  return It == MethodIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::targetObjectView(uint32_t Loc) const {
  auto It = TargetIndex.find(Loc);
  return It == TargetIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::activeObjectView(uint32_t Loc) const {
  auto It = ActiveIndex.find(Loc);
  return It == ActiveIndex.end() ? nullptr : &Views[It->second];
}

std::vector<uint32_t> ViewWeb::viewsOf(uint32_t Eid) const {
  std::vector<uint32_t> Result;
  const TraceEntry &Entry = T->Entries[Eid];
  if (auto It = ThreadIndex.find(Entry.Tid); It != ThreadIndex.end())
    Result.push_back(It->second);
  if (auto It = MethodIndex.find(Entry.Method.Id); It != MethodIndex.end())
    Result.push_back(It->second);
  if (hasTargetObject(Entry.Ev))
    if (auto It = TargetIndex.find(Entry.Ev.Target.Loc);
        It != TargetIndex.end())
      Result.push_back(It->second);
  if (!Entry.Self.isNone())
    if (auto It = ActiveIndex.find(Entry.Self.Loc); It != ActiveIndex.end())
      Result.push_back(It->second);
  return Result;
}

int64_t ViewWeb::positionOf(const View &V, uint32_t Eid) {
  auto It = std::lower_bound(V.Entries.begin(), V.Entries.end(), Eid);
  if (It == V.Entries.end() || *It != Eid)
    return -1;
  return It - V.Entries.begin();
}

std::string ViewWeb::render(const View &V, size_t MaxEntries) const {
  std::ostringstream OS;
  OS << viewTypeName(V.Type) << " view ";
  switch (V.Type) {
  case ViewType::Thread:
    OS << "thread-" << V.Tid;
    break;
  case ViewType::Method:
    OS << T->Strings->text(V.MethodName);
    break;
  case ViewType::TargetObject:
  case ViewType::ActiveObject:
    OS << T->renderObj(V.FirstRepr);
    break;
  }
  OS << " (" << V.Entries.size() << " entries)\n";
  size_t Shown = 0;
  for (uint32_t Eid : V.Entries) {
    if (Shown++ == MaxEntries) {
      OS << "  ...\n";
      break;
    }
    OS << "  [" << Eid << "] " << T->renderEntry(T->Entries[Eid]) << '\n';
  }
  return OS.str();
}
