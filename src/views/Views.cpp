//===- views/Views.cpp ----------------------------------------------------===//

#include "views/Views.h"

#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/TraceEventRecorder.h"

#include <algorithm>
#include <sstream>

using namespace rprism;

const char *rprism::viewTypeName(ViewType Type) {
  switch (Type) {
  case ViewType::Thread:       return "thread";
  case ViewType::Method:       return "method";
  case ViewType::TargetObject: return "target-object";
  case ViewType::ActiveObject: return "active-object";
  }
  return "?";
}

/// True if the event kind carries a target object (FE/ME/KE events do;
/// fork/end do not). Shared with the view-index writer, which must
/// partition entries identically (trace/Event.h).
static bool hasTargetObject(EventKind Kind, const ObjRepr &Target) {
  return eventHasTargetObject(Kind, Target);
}

namespace {

/// One view family built by an independent scan: views in first-appearance
/// order with family-local ids. Keys (tids, interned symbol ids, store
/// locations) are small dense integers, so the key -> local-id map is a
/// direct-indexed vector — one bounds check + load per entry on the build
/// hot path instead of a hash probe. The web's hash index is built once
/// per family afterwards (O(views), not O(entries)).
///
/// Each builder scans only the column(s) its family keys on — the payoff
/// of the columnar trace: the thread scan streams 4 bytes/entry, not a
/// 144-byte struct.
struct FamilyBuild {
  std::vector<View> Views;
  std::vector<uint32_t> Dense; ///< key -> local id; ~0u = no view yet.

  View &getOrCreate(uint32_t Key) {
    if (Key >= Dense.size())
      Dense.resize(Key + 1, ~0u);
    uint32_t &Slot = Dense[Key];
    if (Slot == ~0u) {
      Slot = static_cast<uint32_t>(Views.size());
      Views.emplace_back();
    }
    return Views[Slot];
  }
};

/// nu_TH: every entry belongs to its thread's view. Reads the tid column.
FamilyBuild buildThreadFamily(const Trace &T) {
  FamilyBuild F;
  const uint32_t *Tids = T.Tids.data();
  uint32_t N = static_cast<uint32_t>(T.size());
  for (uint32_t Eid = 0; Eid != N; ++Eid) {
    View &V = F.getOrCreate(Tids[Eid]);
    if (V.Entries.empty()) {
      V.Type = ViewType::Thread;
      V.Tid = Tids[Eid];
    }
    V.Entries.push_back(Eid);
  }
  return F;
}

/// nu_CM: the (qualified) method on top of the call stack. Reads the
/// method column.
FamilyBuild buildMethodFamily(const Trace &T) {
  FamilyBuild F;
  const Symbol *Methods = T.Methods.data();
  uint32_t N = static_cast<uint32_t>(T.size());
  for (uint32_t Eid = 0; Eid != N; ++Eid) {
    View &V = F.getOrCreate(Methods[Eid].Id);
    if (V.Entries.empty()) {
      V.Type = ViewType::Method;
      V.MethodName = Methods[Eid];
    }
    V.Entries.push_back(Eid);
  }
  return F;
}

/// nu_TO: the event's target object, when it has one. Reads the kind and
/// target columns. LastRepr is filled in one pass at the end (each view's
/// last entry) rather than overwritten per entry — the per-entry struct
/// copy was measurable on long traces.
FamilyBuild buildTargetObjectFamily(const Trace &T) {
  FamilyBuild F;
  const uint8_t *Kinds = T.Kinds.data();
  const ObjRepr *Targets = T.Targets.data();
  uint32_t N = static_cast<uint32_t>(T.size());
  for (uint32_t Eid = 0; Eid != N; ++Eid) {
    if (!hasTargetObject(static_cast<EventKind>(Kinds[Eid]), Targets[Eid]))
      continue;
    View &V = F.getOrCreate(Targets[Eid].Loc);
    if (V.Entries.empty()) {
      V.Type = ViewType::TargetObject;
      V.Loc = Targets[Eid].Loc;
      V.FirstRepr = Targets[Eid];
    }
    V.Entries.push_back(Eid);
  }
  for (View &V : F.Views)
    V.LastRepr = Targets[V.Entries.back()];
  return F;
}

/// nu_AO: the receiver of the executing method, when there is one. Reads
/// the self column.
FamilyBuild buildActiveObjectFamily(const Trace &T) {
  FamilyBuild F;
  const ObjRepr *Selfs = T.Selfs.data();
  uint32_t N = static_cast<uint32_t>(T.size());
  for (uint32_t Eid = 0; Eid != N; ++Eid) {
    if (Selfs[Eid].isNone())
      continue;
    View &V = F.getOrCreate(Selfs[Eid].Loc);
    if (V.Entries.empty()) {
      V.Type = ViewType::ActiveObject;
      V.Loc = Selfs[Eid].Loc;
      V.FirstRepr = Selfs[Eid];
    }
    V.Entries.push_back(Eid);
  }
  for (View &V : F.Views)
    V.LastRepr = Selfs[V.Entries.back()];
  return F;
}

/// Sequential path: all four families in ONE pass over the trace (the
/// keyed columns are the dominant memory traffic; four separate scans only
/// pay off when they run on different cores). Produces exactly what the
/// four independent builders produce.
void buildAllFamiliesFused(const Trace &T, FamilyBuild Families[4]) {
  const uint32_t *Tids = T.Tids.data();
  const Symbol *Methods = T.Methods.data();
  const uint8_t *Kinds = T.Kinds.data();
  const ObjRepr *Targets = T.Targets.data();
  const ObjRepr *Selfs = T.Selfs.data();
  uint32_t N = static_cast<uint32_t>(T.size());
  for (uint32_t Eid = 0; Eid != N; ++Eid) {
    View &TV = Families[0].getOrCreate(Tids[Eid]);
    if (TV.Entries.empty()) {
      TV.Type = ViewType::Thread;
      TV.Tid = Tids[Eid];
    }
    TV.Entries.push_back(Eid);

    View &MV = Families[1].getOrCreate(Methods[Eid].Id);
    if (MV.Entries.empty()) {
      MV.Type = ViewType::Method;
      MV.MethodName = Methods[Eid];
    }
    MV.Entries.push_back(Eid);

    if (hasTargetObject(static_cast<EventKind>(Kinds[Eid]), Targets[Eid])) {
      View &OV = Families[2].getOrCreate(Targets[Eid].Loc);
      if (OV.Entries.empty()) {
        OV.Type = ViewType::TargetObject;
        OV.Loc = Targets[Eid].Loc;
        OV.FirstRepr = Targets[Eid];
      }
      OV.Entries.push_back(Eid);
    }

    if (!Selfs[Eid].isNone()) {
      View &AV = Families[3].getOrCreate(Selfs[Eid].Loc);
      if (AV.Entries.empty()) {
        AV.Type = ViewType::ActiveObject;
        AV.Loc = Selfs[Eid].Loc;
        AV.FirstRepr = Selfs[Eid];
      }
      AV.Entries.push_back(Eid);
    }
  }
  for (View &V : Families[2].Views)
    V.LastRepr = Targets[V.Entries.back()];
  for (View &V : Families[3].Views)
    V.LastRepr = Selfs[V.Entries.back()];
}

} // namespace

ViewWeb::ViewWeb(const Trace &TIn, ThreadPool *Pool, bool UseIndex)
    : T(&TIn) {
  // Warm path: a trace carrying its persisted partitioning skips the
  // entry scans — and the "web-build" span — entirely. The reconstruction
  // is O(views), not O(entries), and produces the identical web (same
  // dense ids, same entry lists; pinned by the CacheTest property test).
  if (UseIndex && TIn.ViewIdx.Present) {
    buildFromIndex(TIn.ViewIdx);
    return;
  }

  // The four families are built by independent scans (each touches only
  // its own map and view list), so they parallelize without shared state;
  // the deterministic concatenation below assigns the same dense ids
  // regardless of completion order. Without workers the four scans fuse
  // into one pass.
  TelemetrySpan WebSpan("web-build");
  FamilyBuild Families[4];
  if (Pool && Pool->numWorkers() > 1) {
    Pool->submit([&] {
      TelemetrySpan S("thread");
      Families[0] = buildThreadFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("method");
      Families[1] = buildMethodFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("target-object");
      Families[2] = buildTargetObjectFamily(*T);
    });
    Pool->submit([&] {
      TelemetrySpan S("active-object");
      Families[3] = buildActiveObjectFamily(*T);
    });
    Pool->wait();
  } else if (Telemetry::enabled() || TraceEventRecorder::armed()) {
    // Instrumented runs (telemetry or timeline tracing) take the four
    // separate scans sequentially so the per-family spans exist (with
    // identical paths and names) at --jobs 1 too. The builders produce
    // exactly what the fused pass produces.
    {
      TelemetrySpan S("thread");
      Families[0] = buildThreadFamily(*T);
    }
    {
      TelemetrySpan S("method");
      Families[1] = buildMethodFamily(*T);
    }
    {
      TelemetrySpan S("target-object");
      Families[2] = buildTargetObjectFamily(*T);
    }
    {
      TelemetrySpan S("active-object");
      Families[3] = buildActiveObjectFamily(*T);
    }
  } else {
    buildAllFamiliesFused(*T, Families);
  }

  std::unordered_map<uint32_t, uint32_t> *Indices[4] = {
      &ThreadIndex, &MethodIndex, &TargetIndex, &ActiveIndex};
  size_t Total = 0;
  for (const FamilyBuild &F : Families)
    Total += F.Views.size();
  Views.reserve(Total);
  for (size_t FI = 0; FI != 4; ++FI) {
    FamilyBuild &F = Families[FI];
    uint32_t Offset = static_cast<uint32_t>(Views.size());
    for (View &V : F.Views) {
      V.Id = Offset + static_cast<uint32_t>(&V - F.Views.data());
      Views.push_back(std::move(V));
    }
    Indices[FI]->reserve(F.Views.size());
    for (uint32_t Key = 0; Key != F.Dense.size(); ++Key)
      if (F.Dense[Key] != ~0u)
        Indices[FI]->emplace(Key, Offset + F.Dense[Key]);
  }
  Telemetry::counterAdd("web.views", Views.size());
}

void ViewWeb::buildFromIndex(const ViewIndex &Idx) {
  TelemetrySpan Span("view-index");
  const ObjRepr *Targets = T->Targets.data();
  const ObjRepr *Selfs = T->Selfs.data();
  std::unordered_map<uint32_t, uint32_t> *Indices[NumViewFamilies] = {
      &ThreadIndex, &MethodIndex, &TargetIndex, &ActiveIndex};
  constexpr ViewType FamilyType[NumViewFamilies] = {
      ViewType::Thread, ViewType::Method, ViewType::TargetObject,
      ViewType::ActiveObject};

  Views.reserve(Idx.numViews());
  const uint32_t *Flat = Idx.Entries.data();
  size_t Offset = 0;
  for (size_t F = 0; F != NumViewFamilies; ++F) {
    size_t NumViews = Idx.Keys[F].size();
    Indices[F]->reserve(NumViews);
    for (size_t VI = 0; VI != NumViews; ++VI) {
      uint32_t Key = Idx.Keys[F][VI];
      uint32_t Count = Idx.Counts[F][VI];
      View V;
      V.Type = FamilyType[F];
      V.Id = static_cast<uint32_t>(Views.size());
      V.Entries.borrow(Flat + Offset, Count);
      switch (FamilyType[F]) {
      case ViewType::Thread:
        V.Tid = Key;
        break;
      case ViewType::Method:
        V.MethodName = Symbol{Key};
        break;
      case ViewType::TargetObject:
      case ViewType::ActiveObject: {
        // The representation endpoints are not persisted — they are two
        // column loads per view (first and last member entry), the same
        // values the scan builders record.
        const ObjRepr *Col =
            FamilyType[F] == ViewType::TargetObject ? Targets : Selfs;
        V.Loc = Key;
        V.FirstRepr = Col[Flat[Offset]];
        V.LastRepr = Col[Flat[Offset + Count - 1]];
        break;
      }
      }
      Indices[F]->emplace(Key, V.Id);
      Views.push_back(std::move(V));
      Offset += Count;
    }
  }
  Telemetry::counterAdd("web.views", Views.size());
  Telemetry::counterAdd("web.from_index", 1);
}

const View *ViewWeb::threadView(uint32_t Tid) const {
  auto It = ThreadIndex.find(Tid);
  return It == ThreadIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::methodView(Symbol QualName) const {
  auto It = MethodIndex.find(QualName.Id);
  return It == MethodIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::targetObjectView(uint32_t Loc) const {
  auto It = TargetIndex.find(Loc);
  return It == TargetIndex.end() ? nullptr : &Views[It->second];
}

const View *ViewWeb::activeObjectView(uint32_t Loc) const {
  auto It = ActiveIndex.find(Loc);
  return It == ActiveIndex.end() ? nullptr : &Views[It->second];
}

std::vector<uint32_t> ViewWeb::viewsOf(uint32_t Eid) const {
  std::vector<uint32_t> Result;
  if (auto It = ThreadIndex.find(T->tid(Eid)); It != ThreadIndex.end())
    Result.push_back(It->second);
  if (auto It = MethodIndex.find(T->method(Eid).Id); It != MethodIndex.end())
    Result.push_back(It->second);
  if (hasTargetObject(T->kind(Eid), T->target(Eid)))
    if (auto It = TargetIndex.find(T->target(Eid).Loc);
        It != TargetIndex.end())
      Result.push_back(It->second);
  if (!T->self(Eid).isNone())
    if (auto It = ActiveIndex.find(T->self(Eid).Loc); It != ActiveIndex.end())
      Result.push_back(It->second);
  return Result;
}

int64_t ViewWeb::positionOf(const View &V, uint32_t Eid) {
  auto It = std::lower_bound(V.Entries.begin(), V.Entries.end(), Eid);
  if (It == V.Entries.end() || *It != Eid)
    return -1;
  return It - V.Entries.begin();
}

std::string ViewWeb::render(const View &V, size_t MaxEntries) const {
  std::ostringstream OS;
  OS << viewTypeName(V.Type) << " view ";
  switch (V.Type) {
  case ViewType::Thread:
    OS << "thread-" << V.Tid;
    break;
  case ViewType::Method:
    OS << T->Strings->text(V.MethodName);
    break;
  case ViewType::TargetObject:
  case ViewType::ActiveObject:
    OS << T->renderObj(V.FirstRepr);
    break;
  }
  OS << " (" << V.Entries.size() << " entries)\n";
  size_t Shown = 0;
  for (uint32_t Eid : V.Entries) {
    if (Shown++ == MaxEntries) {
      OS << "  ...\n";
      break;
    }
    OS << "  [" << Eid << "] " << T->renderEntry(Eid) << '\n';
  }
  return OS.str();
}
