//===- views/Navigator.cpp ------------------------------------------------===//

#include "views/Navigator.h"

using namespace rprism;

std::optional<ViewCursor> ViewCursor::at(const ViewWeb &Web, uint32_t Eid,
                                         ViewType Type) {
  for (uint32_t ViewId : Web.viewsOf(Eid)) {
    const View &V = Web.view(ViewId);
    if (V.Type != Type)
      continue;
    int64_t Pos = ViewWeb::positionOf(V, Eid);
    if (Pos < 0)
      return std::nullopt;
    return ViewCursor(Web, ViewId, static_cast<size_t>(Pos));
  }
  return std::nullopt;
}

bool ViewCursor::next() {
  if (Pos + 1 >= view().Entries.size())
    return false;
  ++Pos;
  return true;
}

bool ViewCursor::prev() {
  if (Pos == 0)
    return false;
  --Pos;
  return true;
}
