file(REMOVE_RECURSE
  "CMakeFiles/rprism_analysis_test.dir/AnalysisTest.cpp.o"
  "CMakeFiles/rprism_analysis_test.dir/AnalysisTest.cpp.o.d"
  "rprism_analysis_test"
  "rprism_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
