# Empty compiler generated dependencies file for rprism_analysis_test.
# This may be replaced when dependencies are built.
