file(REMOVE_RECURSE
  "CMakeFiles/rprism_diff_test.dir/DiffTest.cpp.o"
  "CMakeFiles/rprism_diff_test.dir/DiffTest.cpp.o.d"
  "rprism_diff_test"
  "rprism_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
