# Empty dependencies file for rprism_diff_test.
# This may be replaced when dependencies are built.
