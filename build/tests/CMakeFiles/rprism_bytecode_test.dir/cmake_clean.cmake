file(REMOVE_RECURSE
  "CMakeFiles/rprism_bytecode_test.dir/BytecodeTest.cpp.o"
  "CMakeFiles/rprism_bytecode_test.dir/BytecodeTest.cpp.o.d"
  "rprism_bytecode_test"
  "rprism_bytecode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_bytecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
