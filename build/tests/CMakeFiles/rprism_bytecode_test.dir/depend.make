# Empty dependencies file for rprism_bytecode_test.
# This may be replaced when dependencies are built.
