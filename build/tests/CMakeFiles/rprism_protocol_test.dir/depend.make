# Empty dependencies file for rprism_protocol_test.
# This may be replaced when dependencies are built.
