file(REMOVE_RECURSE
  "CMakeFiles/rprism_protocol_test.dir/ProtocolTest.cpp.o"
  "CMakeFiles/rprism_protocol_test.dir/ProtocolTest.cpp.o.d"
  "rprism_protocol_test"
  "rprism_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
