file(REMOVE_RECURSE
  "CMakeFiles/rprism_correlateedge_test.dir/CorrelateEdgeTest.cpp.o"
  "CMakeFiles/rprism_correlateedge_test.dir/CorrelateEdgeTest.cpp.o.d"
  "rprism_correlateedge_test"
  "rprism_correlateedge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_correlateedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
