# Empty compiler generated dependencies file for rprism_correlateedge_test.
# This may be replaced when dependencies are built.
