# Empty dependencies file for rprism_diffadv_test.
# This may be replaced when dependencies are built.
