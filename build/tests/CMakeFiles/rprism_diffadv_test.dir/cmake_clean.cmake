file(REMOVE_RECURSE
  "CMakeFiles/rprism_diffadv_test.dir/DiffAdvancedTest.cpp.o"
  "CMakeFiles/rprism_diffadv_test.dir/DiffAdvancedTest.cpp.o.d"
  "rprism_diffadv_test"
  "rprism_diffadv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_diffadv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
