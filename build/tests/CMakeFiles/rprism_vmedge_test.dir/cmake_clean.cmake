file(REMOVE_RECURSE
  "CMakeFiles/rprism_vmedge_test.dir/VmEdgeTest.cpp.o"
  "CMakeFiles/rprism_vmedge_test.dir/VmEdgeTest.cpp.o.d"
  "rprism_vmedge_test"
  "rprism_vmedge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_vmedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
