# Empty dependencies file for rprism_vmedge_test.
# This may be replaced when dependencies are built.
