# Empty compiler generated dependencies file for rprism_langedge_test.
# This may be replaced when dependencies are built.
