file(REMOVE_RECURSE
  "CMakeFiles/rprism_langedge_test.dir/LangEdgeTest.cpp.o"
  "CMakeFiles/rprism_langedge_test.dir/LangEdgeTest.cpp.o.d"
  "rprism_langedge_test"
  "rprism_langedge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_langedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
