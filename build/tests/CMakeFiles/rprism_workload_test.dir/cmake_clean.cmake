file(REMOVE_RECURSE
  "CMakeFiles/rprism_workload_test.dir/WorkloadTest.cpp.o"
  "CMakeFiles/rprism_workload_test.dir/WorkloadTest.cpp.o.d"
  "rprism_workload_test"
  "rprism_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
