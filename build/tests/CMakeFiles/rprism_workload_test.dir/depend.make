# Empty dependencies file for rprism_workload_test.
# This may be replaced when dependencies are built.
