file(REMOVE_RECURSE
  "CMakeFiles/rprism_views_test.dir/ViewsTest.cpp.o"
  "CMakeFiles/rprism_views_test.dir/ViewsTest.cpp.o.d"
  "rprism_views_test"
  "rprism_views_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
