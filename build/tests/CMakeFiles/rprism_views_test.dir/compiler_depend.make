# Empty compiler generated dependencies file for rprism_views_test.
# This may be replaced when dependencies are built.
