file(REMOVE_RECURSE
  "CMakeFiles/rprism_querynav_test.dir/QueryNavTest.cpp.o"
  "CMakeFiles/rprism_querynav_test.dir/QueryNavTest.cpp.o.d"
  "rprism_querynav_test"
  "rprism_querynav_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_querynav_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
