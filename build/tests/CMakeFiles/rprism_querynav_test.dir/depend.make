# Empty dependencies file for rprism_querynav_test.
# This may be replaced when dependencies are built.
