file(REMOVE_RECURSE
  "CMakeFiles/rprism_roundtrip_test.dir/CorpusRoundTripTest.cpp.o"
  "CMakeFiles/rprism_roundtrip_test.dir/CorpusRoundTripTest.cpp.o.d"
  "rprism_roundtrip_test"
  "rprism_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
