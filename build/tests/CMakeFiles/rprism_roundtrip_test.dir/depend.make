# Empty dependencies file for rprism_roundtrip_test.
# This may be replaced when dependencies are built.
