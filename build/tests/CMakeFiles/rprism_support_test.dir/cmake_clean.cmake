file(REMOVE_RECURSE
  "CMakeFiles/rprism_support_test.dir/SupportTest.cpp.o"
  "CMakeFiles/rprism_support_test.dir/SupportTest.cpp.o.d"
  "rprism_support_test"
  "rprism_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
