# Empty compiler generated dependencies file for rprism_support_test.
# This may be replaced when dependencies are built.
