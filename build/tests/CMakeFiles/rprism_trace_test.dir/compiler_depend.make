# Empty compiler generated dependencies file for rprism_trace_test.
# This may be replaced when dependencies are built.
