file(REMOVE_RECURSE
  "CMakeFiles/rprism_trace_test.dir/TraceTest.cpp.o"
  "CMakeFiles/rprism_trace_test.dir/TraceTest.cpp.o.d"
  "rprism_trace_test"
  "rprism_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
