# Empty compiler generated dependencies file for rprism_lang_test.
# This may be replaced when dependencies are built.
