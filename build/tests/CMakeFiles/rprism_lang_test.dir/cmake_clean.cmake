file(REMOVE_RECURSE
  "CMakeFiles/rprism_lang_test.dir/LangTest.cpp.o"
  "CMakeFiles/rprism_lang_test.dir/LangTest.cpp.o.d"
  "rprism_lang_test"
  "rprism_lang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
