file(REMOVE_RECURSE
  "CMakeFiles/rprism_runtime_test.dir/RuntimeTest.cpp.o"
  "CMakeFiles/rprism_runtime_test.dir/RuntimeTest.cpp.o.d"
  "rprism_runtime_test"
  "rprism_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
