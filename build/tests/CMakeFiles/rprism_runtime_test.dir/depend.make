# Empty dependencies file for rprism_runtime_test.
# This may be replaced when dependencies are built.
