file(REMOVE_RECURSE
  "CMakeFiles/protocol_check.dir/protocol_check.cpp.o"
  "CMakeFiles/protocol_check.dir/protocol_check.cpp.o.d"
  "protocol_check"
  "protocol_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
