
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protocol_check.cpp" "examples/CMakeFiles/protocol_check.dir/protocol_check.cpp.o" "gcc" "examples/CMakeFiles/protocol_check.dir/protocol_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rprism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rprism_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/rprism_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rprism_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/rprism_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/correlate/CMakeFiles/rprism_correlate.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/rprism_views.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rprism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rprism_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
