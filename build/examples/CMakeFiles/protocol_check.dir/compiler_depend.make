# Empty compiler generated dependencies file for protocol_check.
# This may be replaced when dependencies are built.
