# Empty dependencies file for regression_hunt.
# This may be replaced when dependencies are built.
