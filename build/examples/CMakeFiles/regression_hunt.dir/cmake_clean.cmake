file(REMOVE_RECURSE
  "CMakeFiles/regression_hunt.dir/regression_hunt.cpp.o"
  "CMakeFiles/regression_hunt.dir/regression_hunt.cpp.o.d"
  "regression_hunt"
  "regression_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
