file(REMOVE_RECURSE
  "CMakeFiles/view_explorer.dir/view_explorer.cpp.o"
  "CMakeFiles/view_explorer.dir/view_explorer.cpp.o.d"
  "view_explorer"
  "view_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
