# Empty dependencies file for view_explorer.
# This may be replaced when dependencies are built.
