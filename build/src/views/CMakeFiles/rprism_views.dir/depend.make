# Empty dependencies file for rprism_views.
# This may be replaced when dependencies are built.
