file(REMOVE_RECURSE
  "librprism_views.a"
)
