file(REMOVE_RECURSE
  "CMakeFiles/rprism_views.dir/Navigator.cpp.o"
  "CMakeFiles/rprism_views.dir/Navigator.cpp.o.d"
  "CMakeFiles/rprism_views.dir/Views.cpp.o"
  "CMakeFiles/rprism_views.dir/Views.cpp.o.d"
  "librprism_views.a"
  "librprism_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
