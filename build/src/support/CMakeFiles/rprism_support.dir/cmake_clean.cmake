file(REMOVE_RECURSE
  "CMakeFiles/rprism_support.dir/Hashing.cpp.o"
  "CMakeFiles/rprism_support.dir/Hashing.cpp.o.d"
  "CMakeFiles/rprism_support.dir/Histogram.cpp.o"
  "CMakeFiles/rprism_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/rprism_support.dir/StringInterner.cpp.o"
  "CMakeFiles/rprism_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/rprism_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/rprism_support.dir/TablePrinter.cpp.o.d"
  "librprism_support.a"
  "librprism_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
