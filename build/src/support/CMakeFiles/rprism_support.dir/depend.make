# Empty dependencies file for rprism_support.
# This may be replaced when dependencies are built.
