file(REMOVE_RECURSE
  "librprism_support.a"
)
