file(REMOVE_RECURSE
  "CMakeFiles/rprism_lang.dir/Ast.cpp.o"
  "CMakeFiles/rprism_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/rprism_lang.dir/Checker.cpp.o"
  "CMakeFiles/rprism_lang.dir/Checker.cpp.o.d"
  "CMakeFiles/rprism_lang.dir/Lexer.cpp.o"
  "CMakeFiles/rprism_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/rprism_lang.dir/Parser.cpp.o"
  "CMakeFiles/rprism_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/rprism_lang.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/rprism_lang.dir/PrettyPrinter.cpp.o.d"
  "librprism_lang.a"
  "librprism_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
