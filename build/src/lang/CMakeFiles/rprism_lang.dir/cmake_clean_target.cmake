file(REMOVE_RECURSE
  "librprism_lang.a"
)
