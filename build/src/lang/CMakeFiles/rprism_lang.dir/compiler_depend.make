# Empty compiler generated dependencies file for rprism_lang.
# This may be replaced when dependencies are built.
