file(REMOVE_RECURSE
  "CMakeFiles/rprism_trace.dir/Helpers.cpp.o"
  "CMakeFiles/rprism_trace.dir/Helpers.cpp.o.d"
  "CMakeFiles/rprism_trace.dir/Query.cpp.o"
  "CMakeFiles/rprism_trace.dir/Query.cpp.o.d"
  "CMakeFiles/rprism_trace.dir/Serialize.cpp.o"
  "CMakeFiles/rprism_trace.dir/Serialize.cpp.o.d"
  "CMakeFiles/rprism_trace.dir/Trace.cpp.o"
  "CMakeFiles/rprism_trace.dir/Trace.cpp.o.d"
  "librprism_trace.a"
  "librprism_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
