file(REMOVE_RECURSE
  "librprism_trace.a"
)
