# Empty dependencies file for rprism_trace.
# This may be replaced when dependencies are built.
