file(REMOVE_RECURSE
  "CMakeFiles/rprism_workload.dir/Corpus.cpp.o"
  "CMakeFiles/rprism_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusDaikon.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusDaikon.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusDerby.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusDerby.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusMotivating.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusMotivating.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusRhino.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusRhino.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusSoap.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusSoap.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/CorpusXalan.cpp.o"
  "CMakeFiles/rprism_workload.dir/CorpusXalan.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/Generator.cpp.o"
  "CMakeFiles/rprism_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/rprism_workload.dir/Mutator.cpp.o"
  "CMakeFiles/rprism_workload.dir/Mutator.cpp.o.d"
  "librprism_workload.a"
  "librprism_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
