file(REMOVE_RECURSE
  "librprism_workload.a"
)
