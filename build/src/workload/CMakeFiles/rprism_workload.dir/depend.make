# Empty dependencies file for rprism_workload.
# This may be replaced when dependencies are built.
