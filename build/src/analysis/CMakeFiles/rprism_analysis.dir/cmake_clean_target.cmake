file(REMOVE_RECURSE
  "librprism_analysis.a"
)
