file(REMOVE_RECURSE
  "CMakeFiles/rprism_analysis.dir/HtmlReport.cpp.o"
  "CMakeFiles/rprism_analysis.dir/HtmlReport.cpp.o.d"
  "CMakeFiles/rprism_analysis.dir/Impact.cpp.o"
  "CMakeFiles/rprism_analysis.dir/Impact.cpp.o.d"
  "CMakeFiles/rprism_analysis.dir/Protocol.cpp.o"
  "CMakeFiles/rprism_analysis.dir/Protocol.cpp.o.d"
  "CMakeFiles/rprism_analysis.dir/Regression.cpp.o"
  "CMakeFiles/rprism_analysis.dir/Regression.cpp.o.d"
  "librprism_analysis.a"
  "librprism_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
