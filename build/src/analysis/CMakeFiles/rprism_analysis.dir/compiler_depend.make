# Empty compiler generated dependencies file for rprism_analysis.
# This may be replaced when dependencies are built.
