file(REMOVE_RECURSE
  "librprism_diff.a"
)
