# Empty dependencies file for rprism_diff.
# This may be replaced when dependencies are built.
