file(REMOVE_RECURSE
  "CMakeFiles/rprism_diff.dir/DiffResult.cpp.o"
  "CMakeFiles/rprism_diff.dir/DiffResult.cpp.o.d"
  "CMakeFiles/rprism_diff.dir/Lcs.cpp.o"
  "CMakeFiles/rprism_diff.dir/Lcs.cpp.o.d"
  "CMakeFiles/rprism_diff.dir/ViewsDiff.cpp.o"
  "CMakeFiles/rprism_diff.dir/ViewsDiff.cpp.o.d"
  "librprism_diff.a"
  "librprism_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
