file(REMOVE_RECURSE
  "librprism_runtime.a"
)
