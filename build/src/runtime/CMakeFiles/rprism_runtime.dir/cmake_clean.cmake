file(REMOVE_RECURSE
  "CMakeFiles/rprism_runtime.dir/Compiler.cpp.o"
  "CMakeFiles/rprism_runtime.dir/Compiler.cpp.o.d"
  "CMakeFiles/rprism_runtime.dir/TraceRecorder.cpp.o"
  "CMakeFiles/rprism_runtime.dir/TraceRecorder.cpp.o.d"
  "CMakeFiles/rprism_runtime.dir/Vm.cpp.o"
  "CMakeFiles/rprism_runtime.dir/Vm.cpp.o.d"
  "librprism_runtime.a"
  "librprism_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
