# Empty compiler generated dependencies file for rprism_runtime.
# This may be replaced when dependencies are built.
