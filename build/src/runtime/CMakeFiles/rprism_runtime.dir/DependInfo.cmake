
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Compiler.cpp" "src/runtime/CMakeFiles/rprism_runtime.dir/Compiler.cpp.o" "gcc" "src/runtime/CMakeFiles/rprism_runtime.dir/Compiler.cpp.o.d"
  "/root/repo/src/runtime/TraceRecorder.cpp" "src/runtime/CMakeFiles/rprism_runtime.dir/TraceRecorder.cpp.o" "gcc" "src/runtime/CMakeFiles/rprism_runtime.dir/TraceRecorder.cpp.o.d"
  "/root/repo/src/runtime/Vm.cpp" "src/runtime/CMakeFiles/rprism_runtime.dir/Vm.cpp.o" "gcc" "src/runtime/CMakeFiles/rprism_runtime.dir/Vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/rprism_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rprism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rprism_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
