file(REMOVE_RECURSE
  "librprism_correlate.a"
)
