# Empty compiler generated dependencies file for rprism_correlate.
# This may be replaced when dependencies are built.
