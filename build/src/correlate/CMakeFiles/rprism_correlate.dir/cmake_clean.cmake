file(REMOVE_RECURSE
  "CMakeFiles/rprism_correlate.dir/Correlate.cpp.o"
  "CMakeFiles/rprism_correlate.dir/Correlate.cpp.o.d"
  "librprism_correlate.a"
  "librprism_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
