file(REMOVE_RECURSE
  "CMakeFiles/rprism.dir/rprism.cpp.o"
  "CMakeFiles/rprism.dir/rprism.cpp.o.d"
  "rprism"
  "rprism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rprism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
