# Empty compiler generated dependencies file for rprism.
# This may be replaced when dependencies are built.
