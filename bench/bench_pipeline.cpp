//===- bench/bench_pipeline.cpp - Fingerprint + parallel pipeline sweep ---===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the two layers of the diff-pipeline optimization against the
/// seed sequential path, over a sweep of trace sizes x workload thread
/// counts (the §5.1 scaling pair, extended with spawned runner threads so
/// the per-thread-pair parallelism has work to distribute):
///
///   seed      — fingerprints stripped, jobs=1: the pre-optimization
///               pipeline (every =e compare runs the full field-by-field
///               path).
///   fp-seq    — fingerprints on, jobs=1: isolates the =e fast-path win.
///   fp-jobsN  — fingerprints on, jobs=N: adds the thread-pool stages
///               (web builds, per-pair evaluation, pair fingerprinting).
///
/// A second, on-disk phase measures the repeat-diff warm paths: cold
/// (load + web build + correlate + diff) versus warm (digest-keyed cache
/// hits) over v3 files written with and without the persisted view-index
/// sections.
///
/// Every configuration must produce an identical rendered report and
/// compare-op count (checked here; the determinism contract of
/// ViewsDiffOptions::Jobs). Rows record both the requested and the
/// effective worker count — the adaptive cutoff may clamp silently, and a
/// benchmark that claims jobs=8 while running sequentially misleads.
/// Repetitions auto-scale until each row accumulates a minimum wall time,
/// so sub-millisecond configs aren't drowned by timer noise. Results go
/// to BENCH_pipeline.json: wall seconds, entries/sec, compare ops, and
/// peak RSS.
///
//===----------------------------------------------------------------------===//

#include "cache/DiffCache.h"
#include "diff/ViewsDiff.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "support/BenchHistory.h"
#include "support/MetricsSink.h"
#include "trace/Serialize.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "workload/Generator.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

using namespace rprism;

namespace {

/// Peak resident set size in bytes (0 where unsupported).
uint64_t peakRssBytes() {
#if defined(__unix__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) == 0)
    return static_cast<uint64_t>(Usage.ru_maxrss) * 1024;
#endif
  return 0;
}

struct TracePair {
  std::shared_ptr<StringInterner> Strings;
  Trace Left;
  Trace Right;
};

TracePair makePair(unsigned OuterIters, unsigned WorkloadThreads) {
  GeneratorOptions Base;
  Base.OuterIters = OuterIters;
  Base.NumThreads = WorkloadThreads;
  GeneratorOptions Perturbed = Base;
  Perturbed.Perturb = 1; // One constant changed: a version pair.
  Perturbed.ReorderBlock = true;

  TracePair Pair;
  Pair.Strings = std::make_shared<StringInterner>();
  auto Left = compileSource(generateProgram(Base), Pair.Strings);
  auto Right = compileSource(generateProgram(Perturbed), Pair.Strings);
  if (!Left || !Right)
    std::abort();
  RunOptions Options;
  Options.TraceName = "pipeline";
  Pair.Left = runProgram(*Left, Options).ExecTrace;
  Pair.Right = runProgram(*Right, Options).ExecTrace;
  return Pair;
}

struct Measurement {
  std::string Config;
  double Seconds = 0;
  double EntriesPerSec = 0;
  uint64_t CompareOps = 0;
  uint64_t PeakRss = 0;
  /// Growth of the process RSS high-water mark during this row. The
  /// absolute peak never resets, so small later rows would otherwise
  /// inherit the peak of earlier large rows.
  uint64_t PeakRssDelta = 0;
  /// The worker count asked for (0 resolved to hardware concurrency) and
  /// the one the adaptive cutoff actually granted. Divergence is expected
  /// on small traces and single-core hosts, but it must be *visible* in
  /// every row, never silent.
  unsigned RequestedJobs = 0;
  unsigned EffectiveJobs = 0;
  size_t NumDiffs = 0;
  unsigned Reps = 0;
};

/// Auto-scaled repetition: runs \p Body until the row has accumulated
/// \p MinWallSeconds of measurement (at least \p MinReps, at most
/// \p MaxReps repetitions) and returns the best single-rep seconds. Fixed
/// rep counts under-measure sub-millisecond configs and over-measure the
/// multi-second ones.
template <typename BodyFn>
double bestOf(BodyFn &&Body, unsigned *RepsOut = nullptr,
              unsigned MinReps = 2, double MinWallSeconds = 0.025,
              unsigned MaxReps = 16) {
  double Best = 1e30;
  double Total = 0;
  unsigned Rep = 0;
  while (Rep != MaxReps) {
    Timer Clock;
    Body(Rep);
    double Seconds = Clock.seconds();
    ++Rep;
    Best = std::min(Best, Seconds);
    Total += Seconds;
    if (Rep >= MinReps && Total >= MinWallSeconds)
      break;
  }
  if (RepsOut)
    *RepsOut = Rep;
  return Best;
}

/// Best wall time for one in-memory configuration. The diff inputs are
/// copied per rep so fingerprint stripping cannot leak across configs.
Measurement measure(const std::string &Config, const TracePair &Pair,
                    bool Fingerprints, unsigned Jobs,
                    std::string *RenderOut) {
  Measurement M;
  M.Config = Config;
  uint64_t Entries = Pair.Left.size() + Pair.Right.size();
  uint64_t PeakBefore = peakRssBytes();
  M.Seconds = bestOf(
      [&](unsigned Rep) {
        Trace Left = Pair.Left;
        Trace Right = Pair.Right;
        if (!Fingerprints) {
          // The seed pipeline: no fingerprints existed, every =e compare
          // runs the full field-by-field path.
          Left.HasFingerprints = false;
          Right.HasFingerprints = false;
        }
        ViewsDiffOptions Options;
        Options.Jobs = Jobs;
        M.RequestedJobs = Jobs ? Jobs : ThreadPool::defaultConcurrency();
        M.EffectiveJobs =
            effectiveDiffJobs(Options, Left.size() + Right.size());
        DiffResult Result = viewsDiff(Left, Right, Options);
        M.CompareOps = Result.Stats.CompareOps;
        M.NumDiffs = Result.numDiffs();
        if (RenderOut && Rep == 0)
          *RenderOut = Result.render(50, 12);
      },
      &M.Reps);
  M.EntriesPerSec =
      M.Seconds > 0 ? static_cast<double>(Entries) / M.Seconds : 0;
  M.PeakRss = peakRssBytes();
  M.PeakRssDelta = M.PeakRss - PeakBefore;
  return M;
}

void appendJson(std::string &Json, unsigned OuterIters,
                unsigned WorkloadThreads, uint64_t Entries,
                double BytesPerEntry, const Measurement &M, bool First) {
  char Buf[896];
  std::snprintf(
      Buf, sizeof(Buf),
      "%s    {\"outer_iters\": %u, \"workload_threads\": %u, "
      "\"entries\": %llu, \"format\": \"memory\", "
      "\"bytes_per_entry\": %.1f, \"config\": \"%s\", "
      "\"requested_jobs\": %u, \"effective_jobs\": %u, "
      "\"jobs_diverged\": %s, \"reps\": %u, \"seconds\": %.6f, "
      "\"entries_per_sec\": %.1f, \"compare_ops\": %llu, "
      "\"num_diffs\": %zu, \"peak_rss_bytes\": %llu, "
      "\"peak_rss_delta_bytes\": %llu}",
      First ? "" : ",\n", OuterIters, WorkloadThreads,
      static_cast<unsigned long long>(Entries), BytesPerEntry,
      M.Config.c_str(), M.RequestedJobs, M.EffectiveJobs,
      M.EffectiveJobs != M.RequestedJobs ? "true" : "false", M.Reps,
      M.Seconds, M.EntriesPerSec,
      static_cast<unsigned long long>(M.CompareOps), M.NumDiffs,
      static_cast<unsigned long long>(M.PeakRss),
      static_cast<unsigned long long>(M.PeakRssDelta));
  Json += Buf;
}

/// Writes both traces in one on-disk format, reloads them into one fresh
/// interner, and re-diffs: the report and compare-op totals must be
/// identical to the in-memory reference. \p Label is "v1"/"v2"/"v3"/
/// "v3-noindex"/"v4" ("v3-noindex" writes current-format files *without*
/// the optional view-index sections — the compatibility shape older
/// writers produce; "v4" writes the segmented layout with small segments
/// so the reload crosses many segment boundaries). Returns the JSON
/// fragment.
std::string checkFormatDeterminism(const TracePair &Pair,
                                   const std::string &RefRender,
                                   uint64_t RefOps, const char *Label,
                                   bool First, int &Exit) {
  std::string Name = Label;
  std::string LPath = "/tmp/bench_pipeline_L_" + Name + ".trace";
  std::string RPath = "/tmp/bench_pipeline_R_" + Name + ".trace";
  bool Wrote;
  if (Name == "v3")
    Wrote = writeTrace(Pair.Left, LPath) && writeTrace(Pair.Right, RPath);
  else if (Name == "v3-noindex")
    Wrote = writeTrace(Pair.Left, LPath, /*WithViewIndex=*/false) &&
            writeTrace(Pair.Right, RPath, /*WithViewIndex=*/false);
  else if (Name == "v4")
    Wrote = writeTraceSegmented(Pair.Left, LPath, /*SegmentEntries=*/256) &&
            writeTraceSegmented(Pair.Right, RPath, /*SegmentEntries=*/256);
  else
    Wrote = writeTraceLegacy(Pair.Left, LPath, Name == "v1" ? 1 : 2) &&
            writeTraceLegacy(Pair.Right, RPath, Name == "v1" ? 1 : 2);
  bool ReportIdentical = false, OpsIdentical = false;
  if (Wrote) {
    auto Shared = std::make_shared<StringInterner>();
    Expected<Trace> L = readTrace(LPath, Shared);
    Expected<Trace> R = readTrace(RPath, Shared);
    if (L && R) {
      ViewsDiffOptions Options;
      Options.Jobs = 1;
      DiffResult Result = viewsDiff(*L, *R, Options);
      ReportIdentical = Result.render(50, 12) == RefRender;
      OpsIdentical = Result.Stats.CompareOps == RefOps;
    }
  }
  if (!ReportIdentical || !OpsIdentical) {
    std::printf("  ERROR: %s reload diverged from the in-memory report\n",
                Label);
    Exit = 1;
  }
  std::remove(LPath.c_str());
  std::remove(RPath.c_str());
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%s    {\"format\": \"%s\", \"report_identical\": %s, "
                "\"compare_ops_identical\": %s}",
                First ? "" : ",\n", Label,
                ReportIdentical ? "true" : "false",
                OpsIdentical ? "true" : "false");
  return Buf;
}

/// Whole-file read/write for the salvage exercise (bench-local; the
/// production load path is what the exercise measures, not this).
std::vector<uint8_t> slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

bool spitFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(Out);
}

/// Flips one byte inside a middle segment's Kind-column payload of a v4
/// file, walking trailer -> footer directory -> segment section table.
/// Exactly one segment's checksum breaks, so a salvage read must drop
/// that segment alone. Returns false if \p Bytes does not parse as a
/// multi-segment v4 file.
bool flipMiddleSegmentColumnByte(std::vector<uint8_t> &Bytes) {
  auto Rd32 = [&](size_t Off) {
    uint32_t V;
    std::memcpy(&V, Bytes.data() + Off, sizeof(V));
    return V;
  };
  auto Rd64 = [&](size_t Off) {
    uint64_t V;
    std::memcpy(&V, Bytes.data() + Off, sizeof(V));
    return V;
  };
  if (Bytes.size() < 56 || Rd32(Bytes.size() - 4) != 0x52505445u)
    return false;
  uint64_t Footer = Rd64(Bytes.size() - 24);
  uint32_t NumSegments = Rd32(Footer + 4);
  if (NumSegments < 2)
    return false;
  uint64_t SegOff = Rd64(Footer + 8 + (NumSegments / 2) * 32);
  uint32_t NumSections = Rd32(SegOff + 20);
  for (uint32_t I = 0; I < NumSections; ++I) {
    size_t Rec = SegOff + 32 + I * 32;
    if (Rd32(Rec) != 13) // SecKind: a per-entry column in every segment.
      continue;
    if (Rd64(Rec + 16) == 0)
      return false;
    Bytes[SegOff + Rd64(Rec + 8)] ^= 0x40;
    return true;
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  // Sweep sizes (OuterIters) x workload thread counts. `--quick` trims the
  // sweep for CI smoke runs; `--git-sha` stamps the history record (the
  // harness never shells out to git itself); `--history` overrides the
  // output path.
  bool Quick = false;
  std::string GitSha;
  std::string HistoryPath = "BENCH_pipeline.json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg == "--git-sha" && I + 1 < Argc) {
      GitSha = Argv[++I];
    } else if (Arg == "--history" && I + 1 < Argc) {
      HistoryPath = Argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: bench_pipeline [--quick] [--git-sha SHA] "
                   "[--history FILE]\n");
      return 2;
    }
  }
  std::vector<unsigned> Sizes =
      Quick ? std::vector<unsigned>{50, 200}
            : std::vector<unsigned>{50, 400, 1600};
  std::vector<unsigned> WorkloadThreads =
      Quick ? std::vector<unsigned>{2} : std::vector<unsigned>{1, 4, 8};
  unsigned Hw = ThreadPool::defaultConcurrency();
  std::vector<unsigned> JobCounts{2, 4};
  if (Hw > 4)
    JobCounts.push_back(Hw);

  // The record body; the history header (schema/git_sha/corpus size) is
  // prepended once the sweep has established the corpus size.
  std::string Json = "  \"hardware_concurrency\": " + std::to_string(Hw) +
                     ",\n  \"results\": [\n";
  bool First = true;
  int Exit = 0;
  double LargestSeedSeconds = 0;
  double LargestBestSeconds = 0;
  uint64_t LargestEntries = 0;
  double WarmSpeedup = 0, IndexedColdSpeedup = 0;

  for (unsigned Threads : WorkloadThreads) {
    for (unsigned Size : Sizes) {
      TracePair Pair = makePair(Size, Threads);
      uint64_t Entries = Pair.Left.size() + Pair.Right.size();
      LargestEntries = std::max(LargestEntries, Entries);
      double BytesPerEntry =
          Entries ? static_cast<double>(Pair.Left.storageBytes() +
                                        Pair.Right.storageBytes()) /
                        static_cast<double>(Entries)
                  : 0;
      std::printf("== %llu entries (iters=%u, workload threads=%u) ==\n",
                  static_cast<unsigned long long>(Entries), Size, Threads);

      std::string SeedRender;
      Measurement Seed = measure("seed", Pair, /*Fingerprints=*/false,
                                 /*Jobs=*/1, &SeedRender);
      appendJson(Json, Size, Threads, Entries, BytesPerEntry, Seed, First);
      First = false;
      std::printf("  %-10s %8.2f ms  %12.0f entries/s  %10llu ops\n",
                  Seed.Config.c_str(), Seed.Seconds * 1e3,
                  Seed.EntriesPerSec,
                  static_cast<unsigned long long>(Seed.CompareOps));

      double Best = 1e30;
      std::vector<std::pair<std::string, std::pair<bool, unsigned>>> Configs;
      Configs.emplace_back("fp-seq", std::make_pair(true, 1u));
      for (unsigned Jobs : JobCounts)
        Configs.emplace_back("fp-jobs" + std::to_string(Jobs),
                             std::make_pair(true, Jobs));
      for (const auto &[Name, Cfg] : Configs) {
        std::string Render;
        Measurement M = measure(Name, Pair, Cfg.first, Cfg.second, &Render);
        appendJson(Json, Size, Threads, Entries, BytesPerEntry, M, First);
        std::printf("  %-10s %8.2f ms  %12.0f entries/s  %10llu ops"
                    "  (%.2fx)%s\n",
                    M.Config.c_str(), M.Seconds * 1e3, M.EntriesPerSec,
                    static_cast<unsigned long long>(M.CompareOps),
                    Seed.Seconds / M.Seconds,
                    M.EffectiveJobs != M.RequestedJobs
                        ? "  [adaptive cutoff ran sequential]"
                        : "");
        Best = std::min(Best, M.Seconds);
        // The determinism contract: every jobs value (and the fingerprint
        // fast path) yields the identical report and compare-op count.
        if (Render != SeedRender || M.CompareOps != Seed.CompareOps) {
          std::printf("  ERROR: '%s' diverged from the seed report\n",
                      Name.c_str());
          Exit = 1;
        }
      }
      if (Threads == WorkloadThreads.back() && Size == Sizes.back()) {
        LargestSeedSeconds = Seed.Seconds;
        LargestBestSeconds = Best;
      }
    }
  }

  // Cross-format determinism: every on-disk format must reload into a
  // report byte-identical to the in-memory diff, with identical compare-op
  // totals.
  std::string FormatJson = ",\n  \"format_determinism\": [\n";
  {
    TracePair Pair = makePair(Quick ? 100 : 400, 2);
    ViewsDiffOptions RefOptions;
    RefOptions.Jobs = 1;
    DiffResult Ref = viewsDiff(Pair.Left, Pair.Right, RefOptions);
    std::string RefRender = Ref.render(50, 12);
    bool FormatFirst = true;
    for (const char *Label : {"v1", "v2", "v3", "v3-noindex", "v4"}) {
      FormatJson += checkFormatDeterminism(Pair, RefRender,
                                           Ref.Stats.CompareOps, Label,
                                           FormatFirst, Exit);
      FormatFirst = false;
    }
  }
  FormatJson += "\n  ],\n  \"determinism_ok\": ";
  FormatJson += Exit == 0 ? "true" : "false";

  // Repeat-diff warm paths: cold (digest + load + web build + correlate +
  // diff) versus warm (digest-keyed cache hits) over v3 files written with
  // and without the persisted view-index sections. Every run's report and
  // compare-op total must match the in-memory reference (the rows carry
  // the identity flags CI asserts), and an instrumented pass pins the span
  // contract: on indexed files, web-build never appears — webs come from
  // the view-index sections cold and from the cache warm.
  std::string RepeatJson = ",\n  \"repeat_diff\": [\n";
  {
    TracePair Pair = makePair(Quick ? 100 : 1600, Quick ? 2 : 8);
    uint64_t Entries = Pair.Left.size() + Pair.Right.size();
    ViewsDiffOptions Options;
    Options.Jobs = 1;
    DiffResult Ref = viewsDiff(Pair.Left, Pair.Right, Options);
    std::string RefRender = Ref.render(50, 12);
    std::printf("== repeat diff, %llu entries ==\n",
                static_cast<unsigned long long>(Entries));

    bool RowFirst = true;
    double IndexedCold = 0, IndexedWarm = 0, PlainCold = 0;
    for (bool Indexed : {true, false}) {
      const char *FileKind = Indexed ? "v3-indexed" : "v3-plain";
      std::string LPath =
          std::string("/tmp/bench_repeat_L_") + FileKind + ".trace";
      std::string RPath =
          std::string("/tmp/bench_repeat_R_") + FileKind + ".trace";
      if (!writeTrace(Pair.Left, LPath, Indexed) ||
          !writeTrace(Pair.Right, RPath, Indexed)) {
        std::printf("error: cannot write repeat-diff trace files\n");
        Exit = 1;
        break;
      }

      bool ReportIdentical = true, OpsIdentical = true;
      auto RunOnce = [&](DiffCache &Cache,
                         std::shared_ptr<StringInterner> Strings,
                         bool Check) {
        Err Error;
        auto L = Cache.load(LPath, Strings, &Error);
        auto R = Cache.load(RPath, std::move(Strings), &Error);
        if (!L || !R) {
          std::printf("error: %s\n", Error.render().c_str());
          Exit = 1;
          return;
        }
        DiffResult Result = cachedViewsDiff(*L, *R, Options, Cache);
        if (Check) {
          ReportIdentical &= Result.render(50, 12) == RefRender;
          OpsIdentical &= Result.Stats.CompareOps == Ref.Stats.CompareOps;
        }
      };

      // Cold: a fresh cache and interner per rep — every rep pays digest,
      // load, web build (or index reconstruction), correlation, and diff.
      unsigned ColdReps = 0, WarmReps = 0;
      double Cold = bestOf(
          [&](unsigned Rep) {
            DiffCache Cache;
            auto Strings = std::make_shared<StringInterner>();
            RunOnce(Cache, Strings, Rep == 0);
          },
          &ColdReps);
      // Warm: one persistent primed cache — every rep is the repeat-diff
      // hit path (digest lookups plus the evaluation itself).
      DiffCache WarmCache;
      auto WarmStrings = std::make_shared<StringInterner>();
      RunOnce(WarmCache, WarmStrings, /*Check=*/true);
      double Warm = bestOf(
          [&](unsigned Rep) { RunOnce(WarmCache, WarmStrings, Rep == 0); },
          &WarmReps);

      if (Indexed) {
        IndexedCold = Cold;
        IndexedWarm = Warm;
      } else {
        PlainCold = Cold;
      }
      if (!ReportIdentical || !OpsIdentical) {
        std::printf("  ERROR: %s repeat diff diverged from the in-memory "
                    "report\n",
                    FileKind);
        Exit = 1;
      }
      for (bool WarmRow : {false, true}) {
        char Buf[512];
        std::snprintf(
            Buf, sizeof(Buf),
            "%s    {\"file\": \"%s\", \"phase\": \"%s\", \"entries\": %llu, "
            "\"seconds\": %.6f, \"reps\": %u, \"report_identical\": %s, "
            "\"compare_ops_identical\": %s}",
            RowFirst ? "" : ",\n", FileKind, WarmRow ? "warm" : "cold",
            static_cast<unsigned long long>(Entries),
            WarmRow ? Warm : Cold, WarmRow ? WarmReps : ColdReps,
            ReportIdentical ? "true" : "false",
            OpsIdentical ? "true" : "false");
        RepeatJson += Buf;
        RowFirst = false;
        std::printf("  %-10s %-5s %8.2f ms\n", FileKind,
                    WarmRow ? "warm" : "cold",
                    (WarmRow ? Warm : Cold) * 1e3);
      }

      // Span contract on indexed files: web-build must never fire — the
      // cold path reconstructs from the index ("view-index" span), the
      // warm path hits the cache.
      if (Indexed) {
        Telemetry::get().reset();
        Telemetry::get().setEnabled(true);
        {
          DiffCache Cache;
          auto Strings = std::make_shared<StringInterner>();
          RunOnce(Cache, Strings, /*Check=*/false); // cold
          RunOnce(Cache, Strings, /*Check=*/false); // warm
        }
        Telemetry::get().setEnabled(false);
        TelemetrySnapshot Snap = Telemetry::get().snapshot();
        bool SawWebBuild = false, SawViewIndex = false;
        for (const SpanStat &Span : Snap.Spans) {
          SawWebBuild |= Span.name() == "web-build";
          SawViewIndex |= Span.name() == "view-index";
        }
        if (SawWebBuild || !SawViewIndex ||
            Snap.counter("web.from_index") != 2 ||
            Snap.counter("web.cache.hit") != 2 ||
            Snap.counter("load.cache.hit") != 2) {
          std::printf("  ERROR: indexed repeat diff violated the span/"
                      "counter contract (web-build=%d view-index=%d "
                      "from_index=%llu web_hits=%llu load_hits=%llu)\n",
                      SawWebBuild, SawViewIndex,
                      static_cast<unsigned long long>(
                          Snap.counter("web.from_index")),
                      static_cast<unsigned long long>(
                          Snap.counter("web.cache.hit")),
                      static_cast<unsigned long long>(
                          Snap.counter("load.cache.hit")));
          Exit = 1;
        }
        Telemetry::get().reset();
      }
      std::remove(LPath.c_str());
      std::remove(RPath.c_str());
    }
    WarmSpeedup = IndexedWarm > 0 ? IndexedCold / IndexedWarm : 0;
    IndexedColdSpeedup = IndexedCold > 0 ? PlainCold / IndexedCold : 0;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "\n  ],\n  \"repeat_diff_summary\": {\"warm_speedup\": "
                  "%.2f, \"indexed_cold_speedup\": %.2f}",
                  WarmSpeedup, IndexedColdSpeedup);
    RepeatJson += Buf;
    if (IndexedWarm > 0)
      std::printf("  warm speedup vs cold: %.2fx; indexed cold speedup vs "
                  "unindexed cold: %.2fx\n",
                  IndexedCold / IndexedWarm, PlainCold / IndexedCold);
  }

  // Trace production: how fast the VM turns a program into a finished
  // trace (the recorder's columnar-emission path), per dispatch tier. The
  // compiled program is reused across reps — the run itself is what's
  // being timed — and the switch-tier row doubles as a cheap cross-check
  // that both tiers produce the same entry count.
  std::string TraceGenJson = ",\n  \"trace_gen\": [\n";
  double TraceGenEntriesPerSec = 0;
  {
    GeneratorOptions GenOpt;
    GenOpt.OuterIters = Sizes.back();
    GenOpt.NumThreads = WorkloadThreads.back();
    auto GenStrings = std::make_shared<StringInterner>();
    auto Prog = compileSource(generateProgram(GenOpt), GenStrings);
    if (!Prog)
      std::abort();
    RunOptions Options;
    Options.TraceName = "trace-gen";
    std::printf("== trace generation (iters=%u, workload threads=%u) ==\n",
                GenOpt.OuterIters, GenOpt.NumThreads);
    bool GenFirst = true;
    uint64_t ThreadedEntries = 0, SwitchEntries = 0;
    for (bool Threaded : {true, false}) {
#if defined(_WIN32)
      if (!Threaded)
        continue; // No setenv; the threaded row covers the build's tier.
#else
      if (!Threaded)
        setenv("RPRISM_NO_THREADED_DISPATCH", "1", 1);
#endif
      uint64_t Entries = 0, Steps = 0;
      uint64_t PeakBefore = peakRssBytes();
      unsigned Reps = 0;
      double Seconds = bestOf(
          [&](unsigned) {
            RunResult R = runProgram(*Prog, Options);
            Entries = R.ExecTrace.size();
            Steps = R.Steps;
          },
          &Reps);
      uint64_t Peak = peakRssBytes();
#if !defined(_WIN32)
      if (!Threaded)
        unsetenv("RPRISM_NO_THREADED_DISPATCH");
#endif
      (Threaded ? ThreadedEntries : SwitchEntries) = Entries;
      double Rate = Seconds > 0 ? static_cast<double>(Entries) / Seconds : 0;
      if (Threaded)
        TraceGenEntriesPerSec = Rate;
      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s    {\"dispatch\": \"%s\", \"outer_iters\": %u, "
          "\"workload_threads\": %u, \"entries\": %llu, \"steps\": %llu, "
          "\"reps\": %u, \"seconds\": %.6f, \"entries_per_sec\": %.1f, "
          "\"peak_rss_bytes\": %llu, \"peak_rss_delta_bytes\": %llu}",
          GenFirst ? "" : ",\n", Threaded ? "threaded" : "switch",
          GenOpt.OuterIters, GenOpt.NumThreads,
          static_cast<unsigned long long>(Entries),
          static_cast<unsigned long long>(Steps), Reps, Seconds, Rate,
          static_cast<unsigned long long>(Peak),
          static_cast<unsigned long long>(Peak - PeakBefore));
      TraceGenJson += Buf;
      GenFirst = false;
      std::printf("  %-10s %8.2f ms  %12.0f entries/s\n",
                  Threaded ? "threaded" : "switch", Seconds * 1e3, Rate);
    }
    if (SwitchEntries != 0 && SwitchEntries != ThreadedEntries) {
      std::printf("  ERROR: dispatch tiers produced different entry "
                  "counts (%llu vs %llu)\n",
                  static_cast<unsigned long long>(ThreadedEntries),
                  static_cast<unsigned long long>(SwitchEntries));
      Exit = 1;
    }
    TraceGenJson += "\n  ]";
  }

  // Telemetry verification pass. The measurements above run with telemetry
  // disabled — the recording path must cost nothing when off — so one extra
  // instrumented run + diff cross-checks the metrics registry against
  // DiffStats and exports the shared sink schema alongside the timing
  // results. makePair runs *inside* the instrumented window so the VM's
  // trace-production telemetry (vm-run spans, vm.* counters) lands in the
  // exported metrics too.
  std::string SegmentedJson;
  {
    Telemetry::get().reset();
    Telemetry::get().setEnabled(true);
    uint64_t StartNanos = Telemetry::nowNanos();
    TracePair Pair = makePair(50, 2);
    ViewsDiffOptions Options;
    Options.Jobs = 2;
    DiffResult Result;
    {
      TelemetrySpan Root("bench-pipeline");
      Result = viewsDiff(Pair.Left, Pair.Right, Options);
    }

    // Segmented re-diff + salvage, still inside the instrumented window.
    // An identical v4 pair re-diffs by skipping every digest-equal segment
    // (`trace.segments_skipped`), then a single flipped byte in a middle
    // segment's column payload salvages down to the other segments
    // (`robust.salvage.segments_dropped` == 1). Both counters land in the
    // exported metrics artifact, where CI jq-gates them.
    bool SegRediffClean = false, SegSalvageOk = false;
    uint64_t SegOps = 0;
    {
      const std::string SegPath = "/tmp/bench_pipeline_seg.trace";
      // ~8 segments regardless of the generated trace's entry count, so
      // the flip always has intact neighbors on both sides.
      size_t SegEntries = std::max<size_t>(1, Pair.Left.size() / 8);
      bool Wrote = writeTraceSegmented(Pair.Left, SegPath, SegEntries);
      if (Wrote) {
        auto Shared = std::make_shared<StringInterner>();
        Expected<Trace> L = readTrace(SegPath, Shared);
        Expected<Trace> R = readTrace(SegPath, Shared);
        if (L && R) {
          ViewsDiffOptions SegOptions;
          SegOptions.Jobs = 1;
          TelemetrySpan SegRoot("bench-pipeline-segmented");
          DiffResult SegResult = viewsDiff(*L, *R, SegOptions);
          SegRediffClean = SegResult.numDiffs() == 0;
          SegOps = SegResult.Stats.CompareOps;
        }
      }
      std::vector<uint8_t> Bytes = slurpFile(SegPath);
      if (Wrote && !Bytes.empty() && flipMiddleSegmentColumnByte(Bytes) &&
          spitFile(SegPath, Bytes)) {
        auto Shared = std::make_shared<StringInterner>();
        ReadOptions SalvageOpts;
        SalvageOpts.Salvage = true;
        TraceReadReport Report;
        SalvageOpts.Report = &Report;
        Expected<Trace> Salvaged = readTrace(SegPath, Shared, SalvageOpts);
        SegSalvageOk = Salvaged && Report.Salvaged &&
                       Report.SegmentsDropped == 1 &&
                       Salvaged->size() + Report.EntriesDropped ==
                           Pair.Left.size();
      }
      std::remove(SegPath.c_str());
    }

    Telemetry::get().setEnabled(false);
    TelemetrySnapshot Snap = Telemetry::get().snapshot();
    uint64_t SegSkipped = Snap.counter("trace.segments_skipped");
    uint64_t SegDropped = Snap.counter("robust.salvage.segments_dropped");
    if (!SegRediffClean || SegSkipped == 0) {
      std::printf("ERROR: segmented re-diff skipped no segments "
                  "(clean=%d, skipped=%llu)\n",
                  SegRediffClean,
                  static_cast<unsigned long long>(SegSkipped));
      Exit = 1;
    }
    if (!SegSalvageOk || SegDropped == 0) {
      std::printf("ERROR: segmented salvage did not drop exactly the "
                  "damaged segment (ok=%d, dropped=%llu)\n",
                  SegSalvageOk, static_cast<unsigned long long>(SegDropped));
      Exit = 1;
    }
    {
      char Buf[256];
      std::snprintf(
          Buf, sizeof(Buf),
          ",\n  \"segmented_rediff\": {\"segments_skipped\": %llu, "
          "\"rediff_identical\": %s, \"salvage_segments_dropped\": %llu, "
          "\"salvage_ok\": %s}",
          static_cast<unsigned long long>(SegSkipped),
          SegRediffClean ? "true" : "false",
          static_cast<unsigned long long>(SegDropped),
          SegSalvageOk ? "true" : "false");
      SegmentedJson = Buf;
    }
    // The window holds two diffs (the jobs=2 verification pair plus the
    // segmented re-diff), so the registry counter must equal the sum of
    // both DiffStats totals.
    if (Snap.counter("diff.compare_ops") != Result.Stats.CompareOps + SegOps) {
      std::printf("ERROR: telemetry compare-op counter (%llu) != "
                  "DiffStats.CompareOps sum (%llu)\n",
                  static_cast<unsigned long long>(
                      Snap.counter("diff.compare_ops")),
                  static_cast<unsigned long long>(Result.Stats.CompareOps +
                                                  SegOps));
      Exit = 1;
    }
    MetricsRunInfo Info;
    Info.Tool = "bench_pipeline";
    Info.Command = "verify-jobs2";
    Info.WallNanos = Telemetry::nowNanos() - StartNanos;
    const char *MetricsPath = "BENCH_pipeline_metrics.json";
    if (writeMetricsJson(Snap, Info, MetricsPath)) {
      std::printf("[telemetry written to %s]\n", MetricsPath);
    } else {
      std::printf("error: cannot write %s\n", MetricsPath);
      Exit = 1;
    }
  }

  Json += "\n  ]";
  Json += FormatJson;
  Json += RepeatJson;
  Json += TraceGenJson;
  Json += SegmentedJson;

  // Headline numbers the regression trajectory tracks, pulled up front so
  // history consumers don't have to re-derive them from the row arrays.
  double LargestSpeedup = LargestBestSeconds > 0
                              ? LargestSeedSeconds / LargestBestSeconds
                              : 0;
  {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  ",\n  \"key_metrics\": {\"largest_speedup\": %.2f, "
                  "\"warm_speedup\": %.2f, \"indexed_cold_speedup\": %.2f, "
                  "\"trace_gen_entries_per_sec\": %.1f, "
                  "\"determinism_ok\": %s}",
                  LargestSpeedup, WarmSpeedup, IndexedColdSpeedup,
                  TraceGenEntriesPerSec, Exit == 0 ? "true" : "false");
    Json += Buf;
  }
  Json += "\n}\n";

  BenchRunInfo Run;
  Run.Bench = "pipeline";
  Run.GitSha = GitSha;
  Run.Quick = Quick;
  Run.CorpusEntries = LargestEntries;
  std::string Record = "{\n" + renderBenchHeader(Run) + Json;
  if (appendBenchRecordLine(HistoryPath, Record)) {
    std::printf("\n[history record appended to %s]\n", HistoryPath.c_str());
  } else {
    std::printf("\nerror: cannot append to %s\n", HistoryPath.c_str());
    Exit = 1;
  }
  if (LargestBestSeconds > 0)
    std::printf("largest-size speedup vs seed sequential: %.2fx\n",
                LargestSpeedup);
  return Exit;
}
