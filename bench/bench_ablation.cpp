//===- bench/bench_ablation.cpp - Design-choice ablations -----------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out:
///
///   1. secondary-view exploration on/off and the delta/window constants
///      (SIMILAR-FROM-LINKED-VIEWS);
///   2. the §5 relaxed (context-sensitive) correlation, on the benchmark
///      whose module was re-architected wholesale (xalan-1802);
///   3. value representations vs creation-sequence-only identity (the
///      paper's "default hashCode/toString => empty representation" rule);
///   4. D = (A-B) ∩ C versus the code-removal variant D = (A-B) - C on a
///      regression caused by *deleting* code;
///   5. DP-LCS vs Hirschberg linear-space LCS (the "roughly twice the
///      computation time" trade-off the paper cites from [9]).
///
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"
#include "runtime/Compiler.h"
#include "support/TablePrinter.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

namespace {

void ablateWindows() {
  std::printf("-- 1. exploration window (delta / LCS window) on a "
              "reordered version pair --\n");
  // A pair whose only difference is a *moved* block: recovering it needs
  // secondary-view exploration, and the window must be wide enough to
  // cover the moved entries.
  GeneratorOptions Base;
  Base.OuterIters = 30;
  GeneratorOptions Reordered = Base;
  Reordered.ReorderBlock = true;
  auto Strings = std::make_shared<StringInterner>();
  auto Left = compileSource(generateProgram(Base), Strings);
  auto Right = compileSource(generateProgram(Reordered), Strings);
  if (!Left || !Right)
    return;
  Trace L = runProgram(*Left).ExecTrace;
  Trace R = runProgram(*Right).ExecTrace;

  TablePrinter Table;
  Table.setHeader({"delta", "window", "diffs", "sequences", "compare ops"});
  struct Config {
    unsigned Delta;
    unsigned Window;
    bool Explore;
  };
  const Config Configs[] = {{0, 0, false}, {1, 2, true},   {2, 4, true},
                            {6, 12, true}, {10, 20, true}, {16, 32, true}};
  for (const Config &C : Configs) {
    ViewsDiffOptions Options;
    Options.ExploreSecondaryViews = C.Explore;
    Options.Delta = C.Delta;
    Options.Window = C.Window;
    DiffResult Result = viewsDiff(L, R, Options);
    Table.addRow({C.Explore ? std::to_string(C.Delta) : "off",
                  C.Explore ? std::to_string(C.Window) : "off",
                  TablePrinter::fmtInt(Result.numDiffs()),
                  TablePrinter::fmtInt(Result.Sequences.size()),
                  TablePrinter::fmtInt(Result.Stats.CompareOps)});
  }
  Table.print(std::cout);
  std::printf("(wider windows recover the moved block — fewer differences "
              "— at the cost of more compare operations)\n\n");
}

void ablateRelaxedCorrelation(const PreparedCase &Renamed) {
  std::printf("-- 2. relaxed (context-sensitive) correlation on the "
              "re-architected module (xalan-1802) --\n");
  TablePrinter Table;
  Table.setHeader({"relaxed", "diffs", "similar entries", "compare ops"});
  for (bool Relaxed : {false, true}) {
    ViewsDiffOptions Options;
    Options.RelaxedCorrelation = Relaxed;
    DiffResult Result =
        viewsDiff(Renamed.OrigRegr, Renamed.NewRegr, Options);
    uint64_t Similar =
        Renamed.OrigRegr.size() + Renamed.NewRegr.size() -
        Result.numDiffs();
    Table.addRow({Relaxed ? "on" : "off",
                  TablePrinter::fmtInt(Result.numDiffs()),
                  TablePrinter::fmtInt(Similar),
                  TablePrinter::fmtInt(Result.Stats.CompareOps)});
  }
  Table.print(std::cout);
  std::printf("(note: in this reproduction event equality =e does not "
              "include the executing method, so a renamed method's *body* "
              "events already compare equal and lock-step scanning absorbs "
              "most of the rename tolerance the paper attributes to the "
              "relaxation; the remaining effect is extra exploration "
              "work)\n\n");
}

void ablateValueReprs() {
  std::printf("-- 3. value representations vs creation-seq-only identity "
              "(motivating example) --\n");
  TablePrinter Table;
  Table.setHeader({"value reprs", "|A|", "|D|", "regr sequences"});
  for (bool UseReprs : {true, false}) {
    BenchmarkCase Case = motivatingCase();
    if (!UseReprs) {
      // Force the "empty representation" rule for every class.
      for (const char *Class :
           {"Log", "NumericEntityUtil", "Response", "ServletProcessor",
            "BinaryCharFilter"}) {
        Case.RegrRun.Tracing.NoReprClasses.insert(Class);
        Case.OkRun.Tracing.NoReprClasses.insert(Class);
      }
    }
    Expected<PreparedCase> Prepared = prepareCase(Case);
    if (!Prepared)
      continue;
    RegressionReport Report = analyzeRegression(Prepared->inputs());
    Table.addRow({UseReprs ? "on" : "off",
                  TablePrinter::fmtInt(Report.sizeA),
                  TablePrinter::fmtInt(Report.sizeD),
                  TablePrinter::fmtInt(Report.RegressionSequences.size())});
  }
  Table.print(std::cout);
  std::printf("\n");
}

void ablateRemovalVariant() {
  std::printf("-- 4. D = (A-B) ∩ C vs D = (A-B) - C on a code-removal "
              "regression --\n");
  // A regression caused by *deleting* code: the new version dropped the
  // discount step. Its differences live on the original-version side, so
  // ∩C cannot retain them (§4.1).
  const char *Orig = R"(
    class Pricer {
      Int total;
      Pricer() { this.total = 0; }
      Unit charge(Int amount) {
        this.total = this.total + amount;
        if (amount > 50) {
          this.total = this.total - 5;
        }
        return unit;
      }
    }
    main {
      var p = new Pricer();
      p.charge(inputInt(0));
      p.charge(20);
      print(p.total);
    }
  )";
  const char *New = R"(
    class Pricer {
      Int total;
      Pricer() { this.total = 0; }
      Unit charge(Int amount) {
        this.total = this.total + amount;
        return unit;
      }
    }
    main {
      var p = new Pricer();
      p.charge(inputInt(0));
      p.charge(20);
      print(p.total);
    }
  )";
  auto Strings = std::make_shared<StringInterner>();
  auto OrigProg = compileSource(Orig, Strings);
  auto NewProg = compileSource(New, Strings);
  if (!OrigProg || !NewProg)
    return;
  auto RunWith = [](const CompiledProgram &Prog, int64_t Amount) {
    RunOptions Options;
    Options.IntInputs = {Amount};
    Options.TraceName = "pricer";
    return runProgram(Prog, Options);
  };
  // Regressing input exercises the deleted branch (amount > 50); the ok
  // input does not.
  RunResult OrigRegr = RunWith(*OrigProg, 80);
  RunResult OrigOk = RunWith(*OrigProg, 30);
  RunResult NewRegr = RunWith(*NewProg, 80);
  RunResult NewOk = RunWith(*NewProg, 30);
  std::printf("(outputs: orig/regr=%s new/regr=%s — regression: %s)\n",
              OrigRegr.Output.substr(0, OrigRegr.Output.size() - 1).c_str(),
              NewRegr.Output.substr(0, NewRegr.Output.size() - 1).c_str(),
              OrigRegr.Output != NewRegr.Output ? "yes" : "no");

  RegressionInputs Inputs{&OrigOk.ExecTrace, &OrigRegr.ExecTrace,
                          &NewOk.ExecTrace, &NewRegr.ExecTrace};
  TablePrinter Table;
  Table.setHeader({"variant", "|A|", "|B|", "|C|", "|D|", "regr seqs"});
  for (bool Removal : {false, true}) {
    RegressionOptions Options;
    Options.CodeRemoval = Removal;
    RegressionReport Report = analyzeRegression(Inputs, Options);
    Table.addRow({Removal ? "(A-B)-C" : "(A-B)∩C",
                  TablePrinter::fmtInt(Report.sizeA),
                  TablePrinter::fmtInt(Report.sizeB),
                  TablePrinter::fmtInt(Report.sizeC),
                  TablePrinter::fmtInt(Report.sizeD),
                  TablePrinter::fmtInt(Report.RegressionSequences.size())});
  }
  Table.print(std::cout);
  std::printf("(the ∩C variant loses the removal-induced differences; the "
              "-C variant retains them)\n\n");
}

void ablateHirschberg(const PreparedCase &Prepared) {
  std::printf("-- 5. DP-LCS vs Hirschberg linear-space LCS --\n");
  TablePrinter Table;
  Table.setHeader({"algorithm", "diffs", "compare ops", "peak DP bytes"});
  for (bool Hirschberg : {false, true}) {
    LcsDiffOptions Options;
    Options.UseHirschberg = Hirschberg;
    Options.MemCapBytes = 0; // Uncapped: measuring cost, not failure.
    DiffResult Result =
        lcsDiff(Prepared.OrigRegr, Prepared.NewRegr, Options);
    Table.addRow({Hirschberg ? "hirschberg" : "dp",
                  TablePrinter::fmtInt(Result.numDiffs()),
                  TablePrinter::fmtInt(Result.Stats.CompareOps),
                  TablePrinter::fmtInt(Result.Stats.PeakBytes)});
  }
  Table.print(std::cout);
  std::printf("(the paper cites [9]: linear space costs roughly twice the "
              "computation)\n\n");
}

} // namespace

int main() {
  std::printf("== Ablations over the design choices ==\n\n");

  Expected<PreparedCase> Daikon = prepareCase(benchmarkCorpus()[0]);
  Expected<PreparedCase> Xalan1802 = prepareCase(benchmarkCorpus()[2]);
  if (!Daikon || !Xalan1802) {
    std::fprintf(stderr, "case preparation failed\n");
    return 1;
  }

  ablateWindows();
  ablateRelaxedCorrelation(*Xalan1802);
  ablateValueReprs();
  ablateRemovalVariant();
  ablateHirschberg(*Daikon);
  return 0;
}
