//===- bench/bench_motivating.cpp - §3.4 / §4.2 motivating example --------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's §4.2 narrative: runs the Fig. 1 MyFaces-style
/// version pair on the regressing (text/html) and non-regressing
/// (text/plain) inputs, performs the three diffs, and reports the
/// candidate set. The paper reports: seven regression-relevant differences
/// identified with no false positives, and the other difference runs
/// classified as unrelated.
///
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

int main() {
  std::printf("== Motivating example (Fig. 1 / §4.2) ==\n\n");
  BenchmarkCase Case = motivatingCase();
  Expected<PreparedCase> Prepared = prepareCase(Case);
  if (!Prepared) {
    std::fprintf(stderr, "error: %s\n", Prepared.error().render().c_str());
    return 1;
  }

  std::printf("regression exhibited: %s\n",
              Prepared->exhibitsRegression() ? "yes" : "NO");
  std::printf("orig/text-html output (excerpt): %.60s...\n",
              Prepared->OrigRegrOut.c_str());
  std::printf("new/text-html  output (excerpt): %.60s...\n\n",
              Prepared->NewRegrOut.c_str());

  RegressionReport Report = analyzeRegression(Prepared->inputs());
  std::printf("|A| (suspected)  = %llu differences in %zu sequences\n",
              static_cast<unsigned long long>(Report.sizeA),
              Report.A.Sequences.size());
  std::printf("|B| (expected)   = %llu\n",
              static_cast<unsigned long long>(Report.sizeB));
  std::printf("|C| (regression) = %llu\n",
              static_cast<unsigned long long>(Report.sizeC));
  std::printf("|D| (candidates) = %llu in %zu sequence(s)\n\n",
              static_cast<unsigned long long>(Report.sizeD),
              Report.RegressionSequences.size());

  RegressionScore Score = scoreReport(Report, Case.Truth);
  std::printf("scored against ground truth: %u reported sequence(s): "
              "%u cause, %u effect-related, %u false positive(s); "
              "%u false negative(s)\n",
              Score.ReportedSequences, Score.TruePositives,
              Score.EffectRelated, Score.FalsePositives,
              Score.FalseNegatives);
  std::printf("unrelated difference sequences correctly not reported: "
              "%zu\n\n",
              Report.A.Sequences.size() - Report.RegressionSequences.size());

  std::cout << Report.render(/*MaxSequences=*/5, /*MaxEntries=*/12);
  std::printf("\npaper reference: 7 regression-relevant differences, "
              "0 false positives, ~20 unrelated difference runs\n");
  return 0;
}
