//===- bench/bench_table1.cpp - Table 1: benchmark & analysis matrix ------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: per benchmark, the workload characteristics (LOC,
/// trace entries, tracing seconds) and, for both the LCS-based and the
/// views-based differencing, the regression-analysis results: number of
/// differences, difference sequences, regression-related sequences, false
/// positives/negatives, analysis time, memory, and the wall-clock speedup
/// of views over LCS. The LCS engine runs against a memory cap (the
/// scaled-down stand-in for the paper's 32 GB server) and fails on the
/// Derby-style benchmark exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"
#include "workload/Corpus.h"

#include "support/TablePrinter.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

namespace {

/// The scaled-down stand-in for the paper's 32 GB memory budget. The
/// corpus traces are ~10-20x shorter than the paper's, so the cap shrinks
/// quadratically with them.
constexpr uint64_t LcsMemCap = 2ull << 30;

struct EngineRow {
  std::string Diffs = "-";
  std::string Seqs = "-";
  std::string RegrSeqs = "-";
  std::string FalsePos = "-";
  std::string FalseNeg = "-";
  std::string Seconds = "-";
  std::string MemGiB = "-";
  double WallSeconds = 0;
};

EngineRow runEngine(const PreparedCase &Prepared,
                    const std::vector<GroundTruthChange> &Truth,
                    DiffEngineKind Engine) {
  RegressionOptions Options;
  Options.Engine = Engine;
  Options.Lcs.MemCapBytes = LcsMemCap;
  RegressionReport Report = analyzeRegression(Prepared.inputs(), Options);

  EngineRow Row;
  Row.WallSeconds = Report.Stats.Seconds;
  if (Report.OutOfMemory) {
    Row.Diffs = "(out of memory";
    Row.Seqs = "failure at";
    Row.RegrSeqs = TablePrinter::fmt(
                       static_cast<double>(LcsMemCap) / (1u << 30), 0) +
                   " GiB)";
    return Row;
  }
  RegressionScore Score = scoreReport(Report, Truth);
  Row.Diffs = TablePrinter::fmtInt(Report.sizeA);
  Row.Seqs = TablePrinter::fmtInt(Report.A.Sequences.size());
  Row.RegrSeqs = TablePrinter::fmtInt(Score.regressionRelated());
  Row.FalsePos = std::to_string(Score.FalsePositives);
  Row.FalseNeg = std::to_string(Score.FalseNegatives);
  Row.Seconds = TablePrinter::fmt(Report.Stats.Seconds, 2);
  Row.MemGiB = TablePrinter::fmt(
      static_cast<double>(Report.Stats.PeakBytes) / (1u << 30), 3);
  return Row;
}

} // namespace

int main() {
  std::printf("== Table 1: benchmark and analysis characteristics ==\n\n");

  TablePrinter Table;
  Table.setHeader({"benchmark", "LOC", "entries", "trace s",
                   // LCS columns.
                   "L.diffs", "L.seqs", "L.regr", "L.FP", "L.FN", "L.sec",
                   "L.GiB",
                   // Views columns.
                   "V.diffs", "V.seqs", "V.regr", "V.FP", "V.FN", "V.sec",
                   "V.GiB", "speedup"});

  for (const BenchmarkCase &Case : benchmarkCorpus()) {
    Expected<PreparedCase> Prepared = prepareCase(Case);
    if (!Prepared) {
      std::fprintf(stderr, "%s: %s\n", Case.Name.c_str(),
                   Prepared.error().render().c_str());
      continue;
    }
    if (!Prepared->exhibitsRegression())
      std::fprintf(stderr, "warning: %s does not exhibit a regression\n",
                   Case.Name.c_str());

    EngineRow Lcs = runEngine(*Prepared, Case.Truth, DiffEngineKind::Lcs);
    EngineRow Views =
        runEngine(*Prepared, Case.Truth, DiffEngineKind::Views);
    std::string Speedup =
        Lcs.Seconds == "-" || Lcs.Diffs.front() == '('
            ? "-"
            : TablePrinter::fmt(Lcs.WallSeconds /
                                    std::max(Views.WallSeconds, 1e-9),
                                1) +
                  "x";

    Table.addRow({Case.Name,
                  TablePrinter::fmtInt(Case.linesOfCode()),
                  TablePrinter::fmtInt(Prepared->OrigRegr.size()),
                  TablePrinter::fmt(Prepared->TracingSeconds, 2),
                  Lcs.Diffs, Lcs.Seqs, Lcs.RegrSeqs, Lcs.FalsePos,
                  Lcs.FalseNeg, Lcs.Seconds, Lcs.MemGiB,
                  Views.Diffs, Views.Seqs, Views.RegrSeqs, Views.FalsePos,
                  Views.FalseNeg, Views.Seconds, Views.MemGiB, Speedup});
  }

  Table.print(std::cout);
  std::printf("\npaper reference (shape): views-based differencing "
              "succeeds everywhere with MBs of memory and seconds of "
              "runtime; the LCS baseline needs orders of magnitude more "
              "memory/time and fails outright on the largest "
              "(multithreaded) benchmark; FP/FN stay in low single "
              "digits.\n");
  return 0;
}
