//===- bench/bench_table2.cpp - Table 2: views and analysis set sizes -----===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: per benchmark, the number of views in the original
/// program version's trace (total / thread / method / target-object) and
/// the sizes of the §4 analysis sets A (suspected), B (expected), C
/// (regression), and D (result).
///
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"
#include "views/Views.h"
#include "workload/Corpus.h"

#include "support/TablePrinter.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

int main() {
  std::printf("== Table 2: number of views and analysis set sizes ==\n\n");

  TablePrinter Table;
  Table.setHeader({"benchmark", "total views", "thread", "method",
                   "target obj", "|A|", "|B|", "|C|", "|D|"});

  for (const BenchmarkCase &Case : benchmarkCorpus()) {
    Expected<PreparedCase> Prepared = prepareCase(Case);
    if (!Prepared) {
      std::fprintf(stderr, "%s: %s\n", Case.Name.c_str(),
                   Prepared.error().render().c_str());
      continue;
    }

    // "Number of views (in the original program version only)". The paper
    // itemizes thread/method/target-object views; the total additionally
    // counts active-object views.
    ViewWeb Web(Prepared->OrigRegr);
    RegressionReport Report = analyzeRegression(Prepared->inputs());

    // The paper's sets are at difference-sequence granularity (Daikon's
    // |A|=42 equals Table 1's 42 difference sequences).
    Table.addRow({Case.Name,
                  TablePrinter::fmtInt(Web.numViews()),
                  TablePrinter::fmtInt(Web.numThreadViews()),
                  TablePrinter::fmtInt(Web.numMethodViews()),
                  TablePrinter::fmtInt(Web.numTargetObjectViews()),
                  TablePrinter::fmtInt(Report.A.Sequences.size()),
                  TablePrinter::fmtInt(Report.B.Sequences.size()),
                  TablePrinter::fmtInt(Report.C.Sequences.size()),
                  TablePrinter::fmtInt(Report.RegressionSequences.size())});
  }

  Table.print(std::cout);
  std::printf("\npaper reference (shape): object views dominate the view "
              "count; |D| is far below |A| (the analysis filters "
              "suspected differences down to a handful of candidates); "
              "|D| can exceed |A|-|B| and be much smaller than |C|.\n");
  return 0;
}
