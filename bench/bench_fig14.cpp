//===- bench/bench_fig14.cpp - Fig. 14 accuracy & speedup histograms ------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 14: injected regressions over the Rhino-style base
/// program (root causes per the [13] distribution), each differenced with
/// both semantics; reports
///
///   accuracy = (total - viewsDiffs) / (total - lcsDiffs)   [Fig. 14a]
///   speedup  = lcsCompareOps / viewsCompareOps             [Fig. 14b]
///
/// The paper's histogram covers 14 usable iBugs cases; this harness
/// produces 14 injected cases (seeds 1..14 over four input pairs).
///
//===----------------------------------------------------------------------===//

#include "diff/Lcs.h"
#include "diff/ViewsDiff.h"
#include "support/Histogram.h"
#include "support/TablePrinter.h"
#include "workload/Mutator.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

int main() {
  std::printf("== Fig. 14: RPrism vs optimized LCS on injected "
              "regressions ==\n\n");

  constexpr unsigned NumCases = 14;
  Histogram Accuracy = makeAccuracyHistogram();
  Histogram Speedup = makeSpeedupHistogram();
  TablePrinter Table;
  Table.setHeader({"case", "root cause", "entries", "lcs diffs",
                   "views diffs", "accuracy", "lcs ops", "views ops",
                   "speedup"});

  unsigned Produced = 0;
  unsigned Under50Seqs = 0;
  unsigned MaxSeqs = 0;
  for (unsigned Index = 0; Index != NumCases; ++Index) {
    RunOptions RegrRun, OkRun;
    rhinoInputs(Index, RegrRun, OkRun);
    Expected<InjectedCase> Case =
        injectRegression(rhinoBaseSource(), RegrRun, OkRun,
                         /*Seed=*/1000 + 7919 * Index);
    if (!Case) {
      std::printf("case %u: %s (skipped)\n", Index,
                  Case.error().render().c_str());
      continue;
    }
    ++Produced;

    const Trace &L = Case->Prepared.OrigRegr;
    const Trace &R = Case->Prepared.NewRegr;
    DiffResult Lcs = lcsDiff(L, R);
    DiffResult Views = viewsDiff(L, R);

    Under50Seqs += Views.Sequences.size() < 50;
    MaxSeqs = std::max(MaxSeqs,
                       static_cast<unsigned>(Views.Sequences.size()));

    double Total = static_cast<double>(L.size() + R.size());
    double AccuracyValue =
        (Total - static_cast<double>(Views.numDiffs())) /
        (Total - static_cast<double>(Lcs.numDiffs()));
    double SpeedupValue =
        Views.Stats.CompareOps == 0
            ? 1.0
            : static_cast<double>(Lcs.Stats.CompareOps) /
                  static_cast<double>(Views.Stats.CompareOps);
    Accuracy.add(AccuracyValue);
    Speedup.add(SpeedupValue);

    Table.addRow({"#" + std::to_string(Index),
                  mutationKindName(Case->Mutation.Kind),
                  TablePrinter::fmtInt(L.size() + R.size()),
                  TablePrinter::fmtInt(Lcs.numDiffs()),
                  TablePrinter::fmtInt(Views.numDiffs()),
                  TablePrinter::fmt(AccuracyValue * 100, 1) + "%",
                  TablePrinter::fmtInt(Lcs.Stats.CompareOps),
                  TablePrinter::fmtInt(Views.Stats.CompareOps),
                  TablePrinter::fmt(SpeedupValue, 2) + "x"});
  }

  Table.print(std::cout);
  std::printf("\n%u of %u cases usable; %u of %u with fewer than 50 "
              "difference sequences (max %u) — the paper: \"more than "
              "two-thirds of the bugs produced less than 50 difference "
              "sequences, with the remainder ranging from 50 to 130\"\n\n",
              Produced, NumCases, Under50Seqs, Produced, MaxSeqs);

  Accuracy.print(std::cout, "Fig. 14(a) Accuracy (RPrism vs LCS)");
  std::printf("\n");
  Speedup.print(std::cout, "Fig. 14(b) Speedup (RPrism vs LCS)");
  std::printf("\npaper reference: accuracy > 100%% in all but 3 of 14 "
              "cases (those 3 above 99%%); speedups up to >100x, below 1x "
              "only for two very small traces\n");
  return 0;
}
