//===- bench/bench_fig14.cpp - Fig. 14 accuracy & speedup histograms ------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 14: injected regressions over the Rhino-style base
/// program (root causes per the [13] distribution), each differenced with
/// both semantics; reports
///
///   accuracy = (total - viewsDiffs) / (total - lcsDiffs)   [Fig. 14a]
///   speedup  = lcsCompareOps / viewsCompareOps             [Fig. 14b]
///
/// The paper's histogram covers 14 usable iBugs cases; this harness
/// produces 14 injected cases (seeds 1..14 over four input pairs).
///
/// A second phase runs the same mutation workload the way a mutation
/// study consumes it — ONE baseline vs N mutants over one input — both
/// pairwise (N independent viewsDiff calls) and variationally (nwayDiff,
/// which hoists the baseline web and lanes). The phase verifies the
/// determinism contract (byte-identical per-mutant reports, identical
/// compare-op totals) and exports both wall-clocks to BENCH_fig14.json
/// plus an rprism-metrics-v1 telemetry block to BENCH_fig14_metrics.json.
/// `--quick` shrinks both phases for CI smoke runs.
///
//===----------------------------------------------------------------------===//

#include "diff/Lcs.h"
#include "diff/NWayDiff.h"
#include "diff/ViewsDiff.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "support/BenchHistory.h"
#include "support/Histogram.h"
#include "support/MetricsSink.h"
#include "support/SimdDispatch.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "workload/Mutator.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#if defined(__unix__)
#include <sys/resource.h>
#endif

using namespace rprism;

namespace {

/// Peak resident set size in bytes (0 where unsupported).
uint64_t peakRssBytes() {
#if defined(__unix__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) == 0)
    return static_cast<uint64_t>(Usage.ru_maxrss) * 1024;
#endif
  return 0;
}

/// Best-of-reps wall clock: repeats \p Body until at least \p MinReps runs
/// and \p MinWallSeconds accumulated, returns the best single rep.
template <typename BodyFn>
double bestOf(BodyFn &&Body, unsigned MinReps = 2,
              double MinWallSeconds = 0.05, unsigned MaxReps = 12) {
  double Best = 1e30;
  double Total = 0;
  unsigned Rep = 0;
  while (Rep != MaxReps) {
    Timer Clock;
    Body();
    double Seconds = Clock.seconds();
    ++Rep;
    Best = std::min(Best, Seconds);
    Total += Seconds;
    if (Rep >= MinReps && Total >= MinWallSeconds)
      break;
  }
  return Best;
}

/// The 1-vs-N phase: generates a shared-baseline mutant set, times the N
/// pairwise diffs against nwayDiff, verifies the identity contract, and
/// writes both JSON artifacts. Returns 0 on success; \p SpeedupOut and
/// \p BaseEntriesOut feed the history record's key metrics.
int runNWayStudy(unsigned NumMutants, std::string &Json, double &SpeedupOut,
                 uint64_t &BaseEntriesOut) {
  std::printf("== 1-vs-N variational study (%u mutants, SIMD tier: %s) "
              "==\n\n",
              NumMutants, simdTierName(activeSimdTier()));

  RunOptions Run, Unused;
  rhinoInputs(0, Run, Unused);
  Expected<MutantSet> Set =
      generateMutantSet(rhinoBaseSource(), Run, NumMutants, /*Seed=*/4242);
  if (!Set) {
    std::printf("ERROR: %s\n", Set.error().render().c_str());
    return 1;
  }
  std::vector<const Trace *> Mutants;
  for (const MutantTrace &M : Set->Mutants)
    Mutants.push_back(&M.ExecTrace);

  // Pairwise: N independent trace-level diffs, each rebuilding the
  // baseline web and re-gathering its lanes (what a study loop without
  // the variational mode runs).
  std::vector<std::string> PairwiseReports(Mutants.size());
  std::vector<uint64_t> PairwiseOps(Mutants.size());
  double PairwiseSeconds = bestOf([&] {
    for (size_t M = 0; M != Mutants.size(); ++M) {
      DiffResult R = viewsDiff(Set->Base, *Mutants[M]);
      PairwiseOps[M] = R.Stats.CompareOps;
      PairwiseReports[M] = R.render(50, 12);
    }
  });

  // Variational: one nwayDiff call over the same inputs.
  NWayResult NWay;
  double NWaySeconds = bestOf([&] {
    NWay = nwayDiff(Set->Base, Mutants);
  });

  // Identity contract: per-mutant compare ops and rendered reports must
  // match the pairwise run exactly.
  int Exit = 0;
  uint64_t PairwiseTotalOps = 0;
  for (size_t M = 0; M != Mutants.size(); ++M) {
    PairwiseTotalOps += PairwiseOps[M];
    if (NWay.Mutants[M].Result.Stats.CompareOps != PairwiseOps[M]) {
      std::printf("ERROR: mutant %zu compare ops diverge: nway %llu vs "
                  "pairwise %llu\n",
                  M,
                  static_cast<unsigned long long>(
                      NWay.Mutants[M].Result.Stats.CompareOps),
                  static_cast<unsigned long long>(PairwiseOps[M]));
      Exit = 1;
    }
    if (NWay.Mutants[M].Result.render(50, 12) != PairwiseReports[M]) {
      std::printf("ERROR: mutant %zu report bytes diverge from the "
                  "pairwise diff\n",
                  M);
      Exit = 1;
    }
  }
  if (!Exit)
    std::printf("identity: all %zu per-mutant reports byte-identical to "
                "pairwise; op totals match (%llu)\n",
                Mutants.size(),
                static_cast<unsigned long long>(PairwiseTotalOps));

  double Speedup = NWaySeconds > 0 ? PairwiseSeconds / NWaySeconds : 0;
  SpeedupOut = Speedup;
  BaseEntriesOut = Set->Base.size();
  std::printf("pairwise: %.4fs   1-vs-N: %.4fs   speedup: %.2fx   "
              "(%zu agree, %zu clusters, %.1f KiB shared lanes)\n\n",
              PairwiseSeconds, NWaySeconds, Speedup, NWay.NumAgreeing,
              NWay.Clusters.size(),
              static_cast<double>(NWay.SharedLaneBytes) / 1024);
  std::fputs(NWay.render().c_str(), stdout);
  std::printf("\n");

  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      ",\n  \"nway\": {\"mutants\": %zu, \"base_entries\": %zu, "
      "\"pairwise_seconds\": %.6f, \"nway_seconds\": %.6f, "
      "\"speedup\": %.3f, \"compare_ops\": %llu, "
      "\"ops_identical\": %s, \"reports_identical\": %s, "
      "\"agreeing\": %zu, \"clusters\": %zu, \"simd_tier\": \"%s\"}",
      Mutants.size(), Set->Base.size(), PairwiseSeconds, NWaySeconds,
      Speedup, static_cast<unsigned long long>(PairwiseTotalOps),
      Exit ? "false" : "true", Exit ? "false" : "true", NWay.NumAgreeing,
      NWay.Clusters.size(), simdTierName(activeSimdTier()));
  Json += Buf;

  // One instrumented nway run for the rprism-metrics-v1 block: the nway.*
  // counters, diff.simd_tier gauge, and stage spans CI asserts on.
  Telemetry::get().reset();
  Telemetry::get().setEnabled(true);
  uint64_t StartNanos = Telemetry::nowNanos();
  {
    TelemetrySpan Root("bench-fig14");
    NWayResult Instrumented = nwayDiff(Set->Base, Mutants);
    if (Instrumented.totalCompareOps() != PairwiseTotalOps) {
      std::printf("ERROR: instrumented nway op total diverges\n");
      Exit = 1;
    }
  }
  Telemetry::get().setEnabled(false);
  MetricsRunInfo Info;
  Info.Tool = "bench_fig14";
  Info.Command = "nway-study";
  Info.WallNanos = Telemetry::nowNanos() - StartNanos;
  const char *MetricsPath = "BENCH_fig14_metrics.json";
  if (writeMetricsJson(Telemetry::get().snapshot(), Info, MetricsPath)) {
    std::printf("[telemetry written to %s]\n", MetricsPath);
  } else {
    std::printf("error: cannot write %s\n", MetricsPath);
    Exit = 1;
  }
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string GitSha;
  std::string HistoryPath = "BENCH_fig14.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strcmp(Argv[I], "--git-sha") == 0 && I + 1 < Argc) {
      GitSha = Argv[++I];
    } else if (std::strcmp(Argv[I], "--history") == 0 && I + 1 < Argc) {
      HistoryPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: bench_fig14 [--quick] [--git-sha SHA] "
                           "[--history FILE]\n");
      return 2;
    }
  }

  std::printf("== Fig. 14: RPrism vs optimized LCS on injected "
              "regressions ==\n\n");

  const unsigned NumCases = Quick ? 4 : 14;
  Histogram Accuracy = makeAccuracyHistogram();
  Histogram Speedup = makeSpeedupHistogram();
  TablePrinter Table;
  Table.setHeader({"case", "root cause", "entries", "lcs diffs",
                   "views diffs", "accuracy", "lcs ops", "views ops",
                   "speedup"});

  unsigned Produced = 0;
  unsigned Under50Seqs = 0;
  unsigned MaxSeqs = 0;
  uint64_t MaxCaseEntries = 0;
  for (unsigned Index = 0; Index != NumCases; ++Index) {
    RunOptions RegrRun, OkRun;
    rhinoInputs(Index, RegrRun, OkRun);
    Expected<InjectedCase> Case =
        injectRegression(rhinoBaseSource(), RegrRun, OkRun,
                         /*Seed=*/1000 + 7919 * Index);
    if (!Case) {
      std::printf("case %u: %s (skipped)\n", Index,
                  Case.error().render().c_str());
      continue;
    }
    ++Produced;

    const Trace &L = Case->Prepared.OrigRegr;
    const Trace &R = Case->Prepared.NewRegr;
    DiffResult Lcs = lcsDiff(L, R);
    DiffResult Views = viewsDiff(L, R);

    Under50Seqs += Views.Sequences.size() < 50;
    MaxSeqs = std::max(MaxSeqs,
                       static_cast<unsigned>(Views.Sequences.size()));
    MaxCaseEntries = std::max<uint64_t>(MaxCaseEntries, L.size() + R.size());

    double Total = static_cast<double>(L.size() + R.size());
    double AccuracyValue =
        (Total - static_cast<double>(Views.numDiffs())) /
        (Total - static_cast<double>(Lcs.numDiffs()));
    double SpeedupValue =
        Views.Stats.CompareOps == 0
            ? 1.0
            : static_cast<double>(Lcs.Stats.CompareOps) /
                  static_cast<double>(Views.Stats.CompareOps);
    Accuracy.add(AccuracyValue);
    Speedup.add(SpeedupValue);

    Table.addRow({"#" + std::to_string(Index),
                  mutationKindName(Case->Mutation.Kind),
                  TablePrinter::fmtInt(L.size() + R.size()),
                  TablePrinter::fmtInt(Lcs.numDiffs()),
                  TablePrinter::fmtInt(Views.numDiffs()),
                  TablePrinter::fmt(AccuracyValue * 100, 1) + "%",
                  TablePrinter::fmtInt(Lcs.Stats.CompareOps),
                  TablePrinter::fmtInt(Views.Stats.CompareOps),
                  TablePrinter::fmt(SpeedupValue, 2) + "x"});
  }

  Table.print(std::cout);
  std::printf("\n%u of %u cases usable; %u of %u with fewer than 50 "
              "difference sequences (max %u) — the paper: \"more than "
              "two-thirds of the bugs produced less than 50 difference "
              "sequences, with the remainder ranging from 50 to 130\"\n\n",
              Produced, NumCases, Under50Seqs, Produced, MaxSeqs);

  Accuracy.print(std::cout, "Fig. 14(a) Accuracy (RPrism vs LCS)");
  std::printf("\n");
  Speedup.print(std::cout, "Fig. 14(b) Speedup (RPrism vs LCS)");
  std::printf("\npaper reference: accuracy > 100%% in all but 3 of 14 "
              "cases (those 3 above 99%%); speedups up to >100x, below 1x "
              "only for two very small traces\n\n");

  std::string Json;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "  \"fig14\": {\"cases\": %u, \"usable\": %u, "
                "\"under_50_seqs\": %u, \"max_seqs\": %u}",
                NumCases, Produced, Under50Seqs, MaxSeqs);
  Json += Buf;

  double NWaySpeedup = 0;
  uint64_t BaseEntries = 0;
  int Exit = runNWayStudy(Quick ? 3 : 8, Json, NWaySpeedup, BaseEntries);

  // Trace production over the Rhino base program: the VM+recorder
  // throughput (and run-stage RSS growth) behind every trace this harness
  // consumes.
  double TraceGenRate = 0;
  {
    RunOptions RegrRun, OkRun;
    rhinoInputs(0, RegrRun, OkRun);
    auto Prog = compileSource(rhinoBaseSource());
    if (Prog) {
      uint64_t PeakBefore = peakRssBytes();
      uint64_t Entries = 0;
      double Seconds = bestOf(
          [&] { Entries = runProgram(*Prog, RegrRun).ExecTrace.size(); });
      uint64_t Peak = peakRssBytes();
      TraceGenRate =
          Seconds > 0 ? static_cast<double>(Entries) / Seconds : 0;
      char GenBuf[320];
      std::snprintf(
          GenBuf, sizeof(GenBuf),
          ",\n  \"trace_gen\": {\"entries\": %llu, \"seconds\": %.6f, "
          "\"entries_per_sec\": %.1f, \"peak_rss_bytes\": %llu, "
          "\"peak_rss_delta_bytes\": %llu}",
          static_cast<unsigned long long>(Entries), Seconds, TraceGenRate,
          static_cast<unsigned long long>(Peak),
          static_cast<unsigned long long>(Peak - PeakBefore));
      Json += GenBuf;
      std::printf("trace generation (rhino base): %llu entries, %.2f ms, "
                  "%.0f entries/s\n\n",
                  static_cast<unsigned long long>(Entries), Seconds * 1e3,
                  TraceGenRate);
    }
  }

  std::snprintf(Buf, sizeof(Buf),
                ",\n  \"key_metrics\": {\"usable_cases\": %u, "
                "\"max_seqs\": %u, \"nway_speedup\": %.3f, "
                "\"trace_gen_entries_per_sec\": %.1f}",
                Produced, MaxSeqs, NWaySpeedup, TraceGenRate);
  Json += Buf;
  Json += "\n}\n";

  BenchRunInfo Run;
  Run.Bench = "fig14";
  Run.GitSha = GitSha;
  Run.Quick = Quick;
  Run.CorpusEntries = std::max(MaxCaseEntries, BaseEntries);
  std::string Record = "{\n" + renderBenchHeader(Run) + Json;
  if (appendBenchRecordLine(HistoryPath, Record)) {
    std::printf("[history record appended to %s]\n", HistoryPath.c_str());
  } else {
    std::printf("error: cannot append to %s\n", HistoryPath.c_str());
    Exit = 1;
  }
  return Exit;
}
