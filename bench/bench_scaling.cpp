//===- bench/bench_scaling.cpp - Linear vs quadratic differencing ---------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §5.1 scaling observations with google-benchmark: the
/// views-based differencing is (near-)linear in trace length while the LCS
/// baseline is quadratic in the desynchronized region; LCS "failed on
/// traces longer than 100K entries (due to memory exhaustion), whereas
/// RPRISM successfully analyzed traces as long as 1.9 million entries".
/// Benchmarks report complexity fits over a sweep of generated traces with
/// differences near both ends (so prefix/suffix trimming cannot hide the
/// quadratic core).
///
//===----------------------------------------------------------------------===//

#include "diff/Lcs.h"
#include "diff/ViewsDiff.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace rprism;

namespace {

/// A cached version pair of traces for a given loop size.
struct TracePair {
  std::shared_ptr<StringInterner> Strings;
  Trace Left;
  Trace Right;
};

const TracePair &pairFor(unsigned OuterIters) {
  static std::map<unsigned, TracePair> Cache;
  auto It = Cache.find(OuterIters);
  if (It != Cache.end())
    return It->second;

  GeneratorOptions Base;
  Base.OuterIters = OuterIters;
  GeneratorOptions Perturbed = Base;
  Perturbed.Perturb = 1; // One constant changed: a version pair.
  Perturbed.ReorderBlock = true;

  TracePair Pair;
  Pair.Strings = std::make_shared<StringInterner>();
  auto Left = compileSource(generateProgram(Base), Pair.Strings);
  auto Right = compileSource(generateProgram(Perturbed), Pair.Strings);
  if (!Left || !Right)
    std::abort();
  RunOptions Options;
  Options.TraceName = "scaling";
  Pair.Left = runProgram(*Left, Options).ExecTrace;
  Pair.Right = runProgram(*Right, Options).ExecTrace;
  return Cache.emplace(OuterIters, std::move(Pair)).first->second;
}

void BM_LcsDiff(benchmark::State &State) {
  const TracePair &Pair = pairFor(static_cast<unsigned>(State.range(0)));
  uint64_t Entries = Pair.Left.size() + Pair.Right.size();
  uint64_t Ops = 0;
  for (auto _ : State) {
    DiffResult Result = lcsDiff(Pair.Left, Pair.Right);
    Ops = Result.Stats.CompareOps;
    benchmark::DoNotOptimize(Result.numDiffs());
  }
  State.SetComplexityN(static_cast<int64_t>(Entries));
  State.counters["entries"] = static_cast<double>(Entries);
  State.counters["compare_ops"] = static_cast<double>(Ops);
}

void BM_ViewsDiff(benchmark::State &State) {
  const TracePair &Pair = pairFor(static_cast<unsigned>(State.range(0)));
  uint64_t Entries = Pair.Left.size() + Pair.Right.size();
  uint64_t Ops = 0;
  for (auto _ : State) {
    DiffResult Result = viewsDiff(Pair.Left, Pair.Right);
    Ops = Result.Stats.CompareOps;
    benchmark::DoNotOptimize(Result.numDiffs());
  }
  State.SetComplexityN(static_cast<int64_t>(Entries));
  State.counters["entries"] = static_cast<double>(Entries);
  State.counters["compare_ops"] = static_cast<double>(Ops);
}

void BM_ViewWebConstruction(benchmark::State &State) {
  const TracePair &Pair = pairFor(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    ViewWeb Web(Pair.Left);
    benchmark::DoNotOptimize(Web.numViews());
  }
  State.SetComplexityN(static_cast<int64_t>(Pair.Left.size()));
}

/// The LCS baseline only scales to short traces; the views semantics is
/// swept an order of magnitude further (the paper's 1.9M-entry point is
/// represented by the top of the sweep).
void LcsRange(benchmark::internal::Benchmark *B) {
  B->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();
}
void ViewsRange(benchmark::internal::Benchmark *B) {
  B->Arg(10)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000)->Complexity();
}

BENCHMARK(BM_LcsDiff)->Apply(LcsRange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ViewsDiff)->Apply(ViewsRange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ViewWebConstruction)
    ->Apply(ViewsRange)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
