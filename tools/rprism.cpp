//===- tools/rprism.cpp - Command-line driver -----------------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `rprism` command-line tool — the library's equivalent of the
/// paper's fully automated RPRISM pipeline ("requiring no code annotations
/// or access to source code" — here, programs in the core language):
///
///   rprism run <prog> [--input S]... [--int-input N]... [--trace F]
///   rprism trace-dump <trace-file>
///   rprism diff <old-prog> <new-prog> [--engine views|lcs] [inputs...]
///   rprism diff-traces <left.rpt> <right.rpt> [--engine views|lcs]
///   rprism analyze <old-prog> <new-prog> --regr-input S [--regr-input S]
///                  --ok-input S [--ok-input S] [--removal]
///   rprism views <prog> [inputs...]
///   rprism protocols <good-prog> <subject-prog> [inputs...]
///
//===----------------------------------------------------------------------===//

#include "analysis/HtmlReport.h"
#include "analysis/Impact.h"
#include "analysis/Protocol.h"
#include "analysis/Regression.h"
#include "cache/DiffCache.h"
#include "robustness/FaultInjector.h"
#include "robustness/Retry.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "support/MetricsSink.h"
#include "support/Telemetry.h"
#include "support/TraceEventRecorder.h"
#include "trace/Serialize.h"
#include "workload/Corpus.h"

#include "MetricsDiffMain.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace rprism;

namespace {

constexpr const char *kVersion = "0.2.0";

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rprism run <prog> [--input S]... [--int-input N]... [--trace F]\n"
      "  rprism trace-dump <trace-file> [--salvage]\n"
      "  rprism diff <old-prog> <new-prog> [--engine views|lcs]\n"
      "              [--input S]... [--html F] [--jobs N] [--no-view-cache]\n"
      "  rprism diff-traces <left.rpt> <right.rpt> [--engine views|lcs]\n"
      "              [--html F] [--jobs N] [--no-view-cache] [--salvage]\n"
      "  rprism diff-nway <base.rpt> <mutant.rpt>... [--html F] [--jobs N]\n"
      "              [--no-view-cache] [--salvage]\n"
      "  rprism analyze <old-prog> <new-prog> --regr-input S...\n"
      "              --ok-input S... [--removal] [--html F] [--jobs N]\n"
      "              [--no-view-cache]\n"
      "  rprism views <prog> [--input S]...\n"
      "  rprism protocols <good-prog> <subject-prog> [--input S]...\n"
      "  rprism metrics-diff <baseline.json> <current.json> [--tolerance\n"
      "              PAT=PCT]... [--two-sided] [--fail-on-missing]\n"
      "  rprism --version\n"
      "\n"
      "telemetry (any subcommand):\n"
      "  --metrics-out F   write run telemetry as JSON (%s)\n"
      "  --profile         print a stage/metric profile to stderr\n"
      "  --trace-out F     write a per-thread timeline as Chrome\n"
      "                    trace-event JSON (open in Perfetto)\n"
      "\n"
      "robustness (any subcommand; or RPRISM_FAULT_SPEC /\n"
      "            RPRISM_RETRY_POLICY in the env):\n"
      "  --fault-spec S    arm the fault injector, e.g.\n"
      "                    'seed=7,file-read:0.01,section-checksum:0@2'\n"
      "  --retry-policy S  I/O retry policy for trace loads, e.g.\n"
      "                    'attempts=5,base_ms=2'\n"
      "\n"
      "exit codes: 0 success, 1 failure, 2 usage error,\n"
      "            3 corrupt input, 4 I/O error, 5 perf regression\n",
      kMetricsSchema);
  return 2;
}

/// Maps an error's class onto the exit-code contract printed by usage():
/// scripts can tell a corrupt trace (retry won't help; 3) from a transient
/// I/O failure (retry might; 4) without parsing stderr.
int exitCodeFor(const Err &E) {
  switch (E.Class) {
  case ErrClass::Usage:
    return 2;
  case ErrClass::Corrupt:
    return 3;
  case ErrClass::Io:
    return 4;
  default:
    return 1;
  }
}

int fail(const Err &E) {
  std::fprintf(stderr, "error: %s\n", E.render().c_str());
  return exitCodeFor(E);
}

Expected<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeClassErr(ErrClass::Io, "file.open",
                        "cannot open '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Shared flag state across subcommands.
struct Args {
  std::vector<std::string> Positional;
  std::vector<std::string> Inputs;
  std::vector<int64_t> IntInputs;
  std::string TracePath;
  DiffEngineKind Engine = DiffEngineKind::Views;
  std::vector<std::string> RegrInputs;
  std::vector<std::string> OkInputs;
  std::string HtmlPath;
  /// Diff-pipeline worker threads; 0 = hardware_concurrency, 1 =
  /// sequential. Any value produces identical reports (see ViewsDiffOptions).
  unsigned Jobs = 0;
  bool Removal = false;
  /// Escape hatch for the warm paths: skip persisted view indexes and the
  /// in-process diff cache, rebuilding everything from the entries. The
  /// report is identical either way; this exists for timing comparisons
  /// and as a workaround should an index ever be suspect.
  bool NoViewCache = false;
  /// Recover the valid prefix of a damaged trace instead of failing
  /// (readTrace salvage mode); what was dropped is reported on stderr.
  bool Salvage = false;
  std::string MetricsOut;
  bool Profile = false;
  std::string TraceOut;
  std::string FaultSpec;
  std::string RetryPolicySpec;
  /// Every --flag that appeared, for per-subcommand validation.
  std::vector<std::string> SeenFlags;
  bool Bad = false;
};

Args parseArgs(int Argc, char **Argv, int Start) {
  Args A;
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        A.Bad = true;
        return "";
      }
      return Argv[++I];
    };
    if (Arg.rfind("--", 0) == 0)
      A.SeenFlags.push_back(Arg);
    if (Arg == "--input")
      A.Inputs.push_back(Next());
    else if (Arg == "--int-input")
      A.IntInputs.push_back(std::atoll(Next()));
    else if (Arg == "--trace")
      A.TracePath = Next();
    else if (Arg == "--regr-input")
      A.RegrInputs.push_back(Next());
    else if (Arg == "--ok-input")
      A.OkInputs.push_back(Next());
    else if (Arg == "--removal")
      A.Removal = true;
    else if (Arg == "--no-view-cache")
      A.NoViewCache = true;
    else if (Arg == "--salvage")
      A.Salvage = true;
    else if (Arg == "--html")
      A.HtmlPath = Next();
    else if (Arg == "--jobs") {
      const char *Value = Next();
      char *End = nullptr;
      long long N = std::strtoll(Value, &End, 10);
      if (N < 0 || End == Value || (End && *End)) {
        std::fprintf(stderr, "error: --jobs needs a non-negative value\n");
        A.Bad = true;
      } else {
        A.Jobs = static_cast<unsigned>(N);
      }
    }
    else if (Arg == "--engine") {
      std::string Engine = Next();
      if (Engine == "lcs")
        A.Engine = DiffEngineKind::Lcs;
      else if (Engine == "views")
        A.Engine = DiffEngineKind::Views;
      else {
        std::fprintf(stderr, "error: unknown engine '%s'\n",
                     Engine.c_str());
        A.Bad = true;
      }
    } else if (Arg == "--metrics-out") {
      A.MetricsOut = Next();
    } else if (Arg == "--profile") {
      A.Profile = true;
    } else if (Arg == "--trace-out") {
      A.TraceOut = Next();
    } else if (Arg == "--fault-spec") {
      A.FaultSpec = Next();
    } else if (Arg == "--retry-policy") {
      A.RetryPolicySpec = Next();
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      A.Bad = true;
    } else {
      A.Positional.push_back(Arg);
    }
  }
  return A;
}

/// Flags each subcommand accepts (beyond the telemetry flags, valid
/// everywhere). A flag outside its subcommand's set is an error, not
/// silently tolerated — e.g. `analyze --input` (analyze takes --regr-input/
/// --ok-input) used to parse cleanly and then be ignored.
const std::vector<const char *> *allowedFlags(const std::string &Command) {
  static const std::vector<const char *> Run = {"--input", "--int-input",
                                                "--trace"};
  static const std::vector<const char *> TraceDump = {"--salvage"};
  static const std::vector<const char *> Diff = {
      "--engine", "--input", "--int-input", "--html", "--jobs",
      "--no-view-cache"};
  static const std::vector<const char *> DiffTraces = {
      "--engine", "--html", "--jobs", "--no-view-cache", "--salvage"};
  static const std::vector<const char *> DiffNWay = {
      "--html", "--jobs", "--no-view-cache", "--salvage"};
  static const std::vector<const char *> Analyze = {
      "--engine",  "--regr-input", "--ok-input", "--int-input",
      "--removal", "--html",       "--jobs",     "--no-view-cache"};
  static const std::vector<const char *> Views = {"--input", "--int-input"};
  static const std::vector<const char *> Protocols = {"--input",
                                                      "--int-input"};
  if (Command == "run")
    return &Run;
  if (Command == "trace-dump")
    return &TraceDump;
  if (Command == "diff")
    return &Diff;
  if (Command == "diff-traces")
    return &DiffTraces;
  if (Command == "diff-nway")
    return &DiffNWay;
  if (Command == "analyze")
    return &Analyze;
  if (Command == "views")
    return &Views;
  if (Command == "protocols")
    return &Protocols;
  return nullptr; // Unknown subcommand.
}

bool validateFlags(const std::string &Command, const Args &A) {
  const std::vector<const char *> *Allowed = allowedFlags(Command);
  if (!Allowed)
    return false;
  bool Ok = true;
  for (const std::string &Flag : A.SeenFlags) {
    if (Flag == "--metrics-out" || Flag == "--profile" ||
        Flag == "--trace-out" || Flag == "--fault-spec" ||
        Flag == "--retry-policy")
      continue;
    if (std::none_of(Allowed->begin(), Allowed->end(),
                     [&Flag](const char *F) { return Flag == F; })) {
      std::fprintf(stderr, "error: '%s' does not accept %s\n",
                   Command.c_str(), Flag.c_str());
      Ok = false;
    }
  }
  return Ok;
}

/// Compiles a program file with a shared interner; exits on error.
Expected<CompiledProgram>
compileFile(const std::string &Path, std::shared_ptr<StringInterner> Strings) {
  Expected<std::string> Source = readFile(Path);
  if (!Source)
    return Source.error();
  Expected<CompiledProgram> Prog = compileSource(*Source, std::move(Strings));
  if (!Prog)
    return makeErr(Path + ": " + Prog.error().render());
  return Prog;
}

RunResult runWith(const CompiledProgram &Prog, const Args &A,
                  std::vector<std::string> Inputs, const char *Name,
                  SegmentedTraceWriter *SegmentSink = nullptr) {
  RunOptions Options;
  Options.Inputs = std::move(Inputs);
  Options.IntInputs = A.IntInputs;
  Options.TraceName = Name;
  Options.Tracing.SegmentSink = SegmentSink;
  return runProgram(Prog, Options);
}

int cmdRun(const Args &A) {
  if (A.Positional.size() != 1)
    return usage();
  auto Prog = compileFile(A.Positional[0], nullptr);
  if (!Prog)
    return fail(Prog.error());

  // Under RPRISM_TRACE_FORMAT=v4 the trace streams to disk *during* the
  // run: the recorder seals full segments while the program executes and
  // finalizes the file when the run ends — no post-run serialization pass.
  const char *Fmt = std::getenv("RPRISM_TRACE_FORMAT");
  bool StreamV4 = !A.TracePath.empty() && Fmt && std::strcmp(Fmt, "v4") == 0;
  std::unique_ptr<SegmentedTraceWriter> Sink;
  if (StreamV4)
    Sink = std::make_unique<SegmentedTraceWriter>(A.TracePath);

  RunResult Result = runWith(*Prog, A, A.Inputs, "run", Sink.get());
  std::fputs(Result.Output.c_str(), stdout);
  std::fprintf(stderr, "[%zu trace entries, %llu steps%s]\n",
               Result.ExecTrace.size(),
               static_cast<unsigned long long>(Result.Steps),
               Result.Completed ? "" : ", did not complete");
  if (!A.TracePath.empty()) {
    bool Written = StreamV4 ? Sink->ok()
                            : writeTrace(Result.ExecTrace, A.TracePath);
    if (!Written) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   A.TracePath.c_str());
      return 1;
    }
    std::fprintf(stderr, "[trace written to %s]\n", A.TracePath.c_str());
  }
  return Result.Completed ? 0 : 1;
}

/// Tells the user (on stderr, like the other bracketed notes) what a
/// degraded read dropped, so salvage never silently passes off a prefix
/// as the whole trace.
void reportDegradations(const std::string &Path,
                        const TraceReadReport &Report) {
  if (Report.Salvaged)
    std::fprintf(stderr, "[%s: salvaged %llu entries (%llu dropped)]\n",
                 Path.c_str(),
                 static_cast<unsigned long long>(Report.EntriesRecovered),
                 static_cast<unsigned long long>(Report.EntriesDropped));
  if (Report.ViewIndexDropped)
    std::fprintf(stderr, "[%s: damaged view index dropped]\n", Path.c_str());
}

int cmdTraceDump(const Args &A) {
  if (A.Positional.size() != 1)
    return usage();
  TraceReadReport Report;
  ReadOptions Options;
  Options.Salvage = A.Salvage;
  Options.Report = &Report;
  Expected<Trace> T = readTrace(A.Positional[0], nullptr, Options);
  if (!T)
    return fail(T.error());
  reportDegradations(A.Positional[0], Report);
  std::fputs(dumpTrace(*T).c_str(), stdout);
  return 0;
}

int printDiff(const Trace &Left, const Trace &Right, const Args &A) {
  ViewsDiffOptions Options;
  Options.Jobs = A.Jobs;
  Options.UseViewIndex = !A.NoViewCache;
  // Salvaged traces stay out of the process-wide cache: its entries are
  // keyed by content digest and trace address, and a salvaged prefix must
  // never be served where the intact bytes are expected.
  DiffResult Result =
      A.Engine == DiffEngineKind::Lcs ? lcsDiff(Left, Right)
      : A.NoViewCache || A.Salvage
          ? viewsDiff(Left, Right, Options)
          : cachedViewsDiff(Left, Right, Options, DiffCache::global());
  if (Result.Stats.OutOfMemory) {
    std::fprintf(stderr, "error: LCS differencing ran out of memory; "
                         "retry with --engine views\n");
    return 1;
  }
  TelemetrySpan ReportSpan("report");
  if (!A.HtmlPath.empty()) {
    if (!writeHtmlFile(renderHtmlDiff(Result), A.HtmlPath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   A.HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "[html report written to %s]\n",
                 A.HtmlPath.c_str());
  }
  std::fputs(Result.render(50, 12).c_str(), stdout);
  std::fprintf(stderr,
               "[%llu compare ops, %.3fs, %.1f MiB]\n",
               static_cast<unsigned long long>(Result.Stats.CompareOps),
               Result.Stats.Seconds,
               static_cast<double>(Result.Stats.PeakBytes) / (1 << 20));
  return 0;
}

int cmdDiff(const Args &A) {
  if (A.Positional.size() != 2)
    return usage();
  auto Strings = std::make_shared<StringInterner>();
  auto Old = compileFile(A.Positional[0], Strings);
  auto New = compileFile(A.Positional[1], Strings);
  if (!Old || !New)
    return fail(!Old ? Old.error() : New.error());
  RunResult OldRun = runWith(*Old, A, A.Inputs, "old");
  RunResult NewRun = runWith(*New, A, A.Inputs, "new");
  if (OldRun.Output != NewRun.Output)
    std::fprintf(stderr, "[outputs differ]\n");
  return printDiff(OldRun.ExecTrace, NewRun.ExecTrace, A);
}

int cmdDiffTraces(const Args &A) {
  if (A.Positional.size() != 2)
    return usage();
  auto Strings = std::make_shared<StringInterner>();
  if (A.NoViewCache || A.Salvage) {
    ReadOptions Options;
    Options.Salvage = A.Salvage;
    TraceReadReport LeftReport;
    Options.Report = &LeftReport;
    Expected<Trace> Left = readTrace(A.Positional[0], Strings, Options);
    if (!Left)
      return fail(Left.error());
    TraceReadReport RightReport;
    Options.Report = &RightReport;
    Expected<Trace> Right = readTrace(A.Positional[1], Strings, Options);
    if (!Right)
      return fail(Right.error());
    reportDegradations(A.Positional[0], LeftReport);
    reportDegradations(A.Positional[1], RightReport);
    return printDiff(*Left, *Right, A);
  }
  // Content-digest-keyed loads: the two sides dedup when they are the same
  // bytes, and repeat diffs in one process (library callers, future REPL)
  // reuse loaded traces and their webs.
  Err Error;
  std::shared_ptr<const Trace> Left =
      DiffCache::global().load(A.Positional[0], Strings, &Error);
  if (!Left)
    return fail(Error);
  std::shared_ptr<const Trace> Right =
      DiffCache::global().load(A.Positional[1], Strings, &Error);
  if (!Right)
    return fail(Error);
  return printDiff(*Left, *Right, A);
}

int cmdDiffNWay(const Args &A) {
  if (A.Positional.size() < 2)
    return usage();
  auto Strings = std::make_shared<StringInterner>();

  // Load the baseline plus every mutant, all sharing one interner. The
  // cached path dedups identical bytes and keeps the loaded traces (and
  // the baseline's web) for repeat studies in one process; salvage and
  // --no-view-cache read directly, as in diff-traces.
  std::vector<std::shared_ptr<const Trace>> Owned;
  std::vector<const Trace *> Traces;
  for (const std::string &Path : A.Positional) {
    if (A.NoViewCache || A.Salvage) {
      ReadOptions Options;
      Options.Salvage = A.Salvage;
      TraceReadReport Report;
      Options.Report = &Report;
      Expected<Trace> T = readTrace(Path, Strings, Options);
      if (!T)
        return fail(T.error());
      reportDegradations(Path, Report);
      Owned.push_back(std::make_shared<const Trace>(T.take()));
    } else {
      Err Error;
      std::shared_ptr<const Trace> T =
          DiffCache::global().load(Path, Strings, &Error);
      if (!T)
        return fail(Error);
      Owned.push_back(std::move(T));
    }
    Traces.push_back(Owned.back().get());
  }

  ViewsDiffOptions Options;
  Options.Jobs = A.Jobs;
  Options.UseViewIndex = !A.NoViewCache;
  std::vector<const Trace *> Mutants(Traces.begin() + 1, Traces.end());
  NWayResult Result =
      A.NoViewCache || A.Salvage
          ? nwayDiff(*Traces[0], Mutants, Options)
          : cachedNWayDiff(*Traces[0], Mutants, Options,
                           DiffCache::global());

  TelemetrySpan ReportSpan("report");
  if (!A.HtmlPath.empty()) {
    HtmlReportOptions HtmlOptions;
    HtmlOptions.Title = "RPrism variational diff";
    if (!writeHtmlFile(renderHtmlNWay(Result, HtmlOptions), A.HtmlPath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   A.HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "[html report written to %s]\n",
                 A.HtmlPath.c_str());
  }
  std::fputs(Result.render().c_str(), stdout);
  std::fprintf(stderr,
               "[%llu compare ops across %zu mutants, %.3fs, "
               "%.1f KiB shared lanes]\n",
               static_cast<unsigned long long>(Result.totalCompareOps()),
               Result.Mutants.size(), Result.Seconds,
               static_cast<double>(Result.SharedLaneBytes) / 1024);
  return 0;
}

int cmdAnalyze(const Args &A) {
  if (A.Positional.size() != 2 || A.RegrInputs.empty() ||
      A.OkInputs.empty())
    return usage();
  auto Strings = std::make_shared<StringInterner>();
  auto Old = compileFile(A.Positional[0], Strings);
  auto New = compileFile(A.Positional[1], Strings);
  if (!Old || !New)
    return fail(!Old ? Old.error() : New.error());
  RunResult OrigOk = runWith(*Old, A, A.OkInputs, "orig-ok");
  RunResult OrigRegr = runWith(*Old, A, A.RegrInputs, "orig-regr");
  RunResult NewOk = runWith(*New, A, A.OkInputs, "new-ok");
  RunResult NewRegr = runWith(*New, A, A.RegrInputs, "new-regr");

  if (OrigRegr.Output == NewRegr.Output)
    std::fprintf(stderr, "warning: the regressing input does not "
                         "discriminate the versions\n");
  if (OrigOk.Output != NewOk.Output)
    std::fprintf(stderr, "warning: the ok input regressed too; expected "
                         "differences may hide the cause\n");

  RegressionInputs Inputs{&OrigOk.ExecTrace, &OrigRegr.ExecTrace,
                          &NewOk.ExecTrace, &NewRegr.ExecTrace};
  RegressionOptions Options;
  Options.Engine = A.Engine;
  Options.Views.Jobs = A.Jobs;
  Options.Views.UseViewIndex = !A.NoViewCache;
  Options.UseDiffCache = !A.NoViewCache;
  Options.CodeRemoval = A.Removal;
  RegressionReport Report = analyzeRegression(Inputs, Options);
  TelemetrySpan ReportSpan("report");
  if (!A.HtmlPath.empty()) {
    HtmlReportOptions HtmlOptions;
    HtmlOptions.Title = "RPrism regression analysis";
    if (!writeHtmlFile(renderHtmlReport(Report, HtmlOptions), A.HtmlPath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   A.HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "[html report written to %s]\n",
                 A.HtmlPath.c_str());
  }
  std::fputs(Report.render(20, 14).c_str(), stdout);
  return 0;
}

int cmdViews(const Args &A) {
  if (A.Positional.size() != 1)
    return usage();
  auto Prog = compileFile(A.Positional[0], nullptr);
  if (!Prog)
    return fail(Prog.error());
  RunResult Result = runWith(*Prog, A, A.Inputs, "views");
  ViewWeb Web(Result.ExecTrace);
  std::printf("%zu entries; %zu views (%zu thread, %zu method, %zu "
              "target-object, %zu active-object)\n\n",
              Result.ExecTrace.size(), Web.numViews(),
              Web.numThreadViews(), Web.numMethodViews(),
              Web.numTargetObjectViews(), Web.numActiveObjectViews());
  for (const View &V : Web.views())
    std::fputs(Web.render(V, 6).c_str(), stdout);
  return 0;
}

int cmdProtocols(const Args &A) {
  if (A.Positional.size() != 2)
    return usage();
  auto Strings = std::make_shared<StringInterner>();
  auto Good = compileFile(A.Positional[0], Strings);
  auto Subject = compileFile(A.Positional[1], Strings);
  if (!Good || !Subject)
    return fail(!Good ? Good.error() : Subject.error());
  RunResult GoodRun = runWith(*Good, A, A.Inputs, "good");
  RunResult SubjectRun = runWith(*Subject, A, A.Inputs, "subject");
  ViewWeb GoodWeb(GoodRun.ExecTrace);
  ViewWeb SubjectWeb(SubjectRun.ExecTrace);
  std::vector<ProtocolAutomaton> Protocols = inferProtocols(GoodWeb);
  for (const ProtocolAutomaton &Auto : Protocols)
    std::fputs(Auto.render(*Strings).c_str(), stdout);
  std::vector<ProtocolViolation> Violations =
      checkProtocols(Protocols, SubjectWeb);
  std::fputs(renderViolations(Violations, SubjectRun.ExecTrace).c_str(),
             stdout);
  return Violations.empty() ? 0 : 1;
}

int dispatch(const std::string &Command, const Args &A) {
  if (Command == "run")
    return cmdRun(A);
  if (Command == "trace-dump")
    return cmdTraceDump(A);
  if (Command == "diff")
    return cmdDiff(A);
  if (Command == "diff-traces")
    return cmdDiffTraces(A);
  if (Command == "diff-nway")
    return cmdDiffNWay(A);
  if (Command == "analyze")
    return cmdAnalyze(A);
  if (Command == "views")
    return cmdViews(A);
  if (Command == "protocols")
    return cmdProtocols(A);
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", Command.c_str());
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  if (Command == "--version" || Command == "version") {
    std::printf("rprism %s\n", kVersion);
    return 0;
  }
  if (Command == "--help" || Command == "help") {
    usage();
    return 0;
  }
  // metrics-diff has its own flag grammar (--tolerance PAT=PCT), so it is
  // dispatched before the shared parser.
  if (Command == "metrics-diff")
    return metricsDiffMain({Argv + 2, Argv + Argc});
  Args A = parseArgs(Argc, Argv, 2);
  if (A.Bad)
    return 2;
  if (!allowedFlags(Command)) {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                 Command.c_str());
    return usage();
  }
  if (!validateFlags(Command, A))
    return usage();

  // Fault injection: the flag wins over the environment (so a script can
  // override a session-wide RPRISM_FAULT_SPEC per invocation). A bad spec
  // is a usage error — never run half-armed.
  std::string FaultSpec = A.FaultSpec;
  if (FaultSpec.empty())
    if (const char *Env = std::getenv("RPRISM_FAULT_SPEC"))
      FaultSpec = Env;
  if (!FaultSpec.empty()) {
    std::string SpecError;
    if (!FaultInjector::get().armFromSpec(FaultSpec, &SpecError)) {
      std::fprintf(stderr, "error: %s\n", SpecError.c_str());
      return 2;
    }
    std::fprintf(stderr, "[fault injector armed: %s]\n", FaultSpec.c_str());
  }

  // I/O retry policy: same contract as the fault spec — the flag wins
  // over RPRISM_RETRY_POLICY, and a bad spec is a usage error rather than
  // a silently defaulted policy.
  std::string RetrySpec = A.RetryPolicySpec;
  if (RetrySpec.empty())
    if (const char *Env = std::getenv("RPRISM_RETRY_POLICY"))
      RetrySpec = Env;
  if (!RetrySpec.empty()) {
    RetryPolicy Policy;
    std::string SpecError;
    if (!parseRetryPolicy(RetrySpec, Policy, &SpecError)) {
      std::fprintf(stderr, "error: %s\n", SpecError.c_str());
      return 2;
    }
    setIoRetryPolicy(Policy);
    std::fprintf(stderr, "[retry policy: %s]\n", RetrySpec.c_str());
  }

  // Telemetry is recorded only when an export was requested; otherwise
  // every instrumentation point stays a single relaxed load.
  bool WantTelemetry = !A.MetricsOut.empty() || A.Profile;
  if (WantTelemetry) {
    Telemetry::get().reset();
    Telemetry::get().setEnabled(true);
  }
  // The timeline recorder is independent of aggregate telemetry:
  // --trace-out works without --metrics-out. The DiffCache source gives
  // the sampler a cache-footprint counter track.
  bool WantTrace = !A.TraceOut.empty();
  if (WantTrace) {
    TraceEventRecorder::get().registerCounterSource(
        "diffcache.bytes",
        [] { return static_cast<double>(DiffCache::global().bytes()); });
    TraceEventRecorder::get().arm();
  }
  uint64_t StartNanos = Telemetry::nowNanos();

  int Exit;
  {
    // Root span named after the subcommand: every pipeline stage nests
    // under it, so span coverage of the run is the root span itself.
    TelemetrySpan Root(Command.c_str());
    Exit = dispatch(Command, A);
  }

  if (WantTrace) {
    TraceEventRecorder::get().disarm();
    TraceEventRecorder::get().clearCounterSources();
    if (!TraceEventRecorder::get().writeChromeTrace(A.TraceOut)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", A.TraceOut.c_str());
      return Exit ? Exit : 4;
    }
    std::fprintf(stderr, "[timeline written to %s]\n", A.TraceOut.c_str());
  }

  if (WantTelemetry) {
    Telemetry::get().setEnabled(false);
    MetricsRunInfo Info;
    Info.Command = Command;
    Info.WallNanos = Telemetry::nowNanos() - StartNanos;
    TelemetrySnapshot Snap = Telemetry::get().snapshot();
    if (A.Profile)
      std::fputs(renderProfileTable(Snap, /*MaxStages=*/16).c_str(), stderr);
    if (!A.MetricsOut.empty()) {
      if (!writeMetricsJson(Snap, Info, A.MetricsOut)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     A.MetricsOut.c_str());
        return Exit ? Exit : 4;
      }
      std::fprintf(stderr, "[metrics written to %s]\n", A.MetricsOut.c_str());
    }
  }
  return Exit;
}
