//===- tools/trace_fuzz.cpp - Seeded corruption harness for trace readers -===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic corruption fuzzer for the trace readers. Writes a small
/// corpus of base traces (empty, single-entry, generated workloads) in
/// every on-disk format (v1, v2, v3 with and without view index, and
/// segmented v4 at two granularities), then applies seeded mutations —
/// truncation, bit flips, byte overwrites, section-table and header
/// tampering, zeroed ranges, appended garbage, plus the v4 boundary
/// structures: trailer fields, footer-directory records, and segment
/// headers — and requires every strict read, salvage read, and digest of
/// the mutant to return cleanly. A crash, hang, or sanitizer report is
/// the failure mode; any error return is a pass.
///
/// Run under ASan+UBSan in CI:  trace_fuzz --seed 20260807 --iters 200
///
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "trace/Serialize.h"
#include "workload/Generator.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

using namespace rprism;

namespace {

struct FuzzStats {
  uint64_t Iterations = 0;
  uint64_t StrictOk = 0;
  uint64_t SalvageOk = 0;
  std::map<std::string, uint64_t> ErrorCodes;
};

Trace traceOf(const std::string &Source) {
  auto Prog = compileSource(Source, nullptr);
  if (!Prog) {
    std::fprintf(stderr, "fatal: base program failed to compile: %s\n",
                 Prog.error().render().c_str());
    std::exit(1);
  }
  RunResult Result = runProgram(*Prog, RunOptions());
  if (!Result.Completed) {
    std::fprintf(stderr, "fatal: base program failed to run: %s\n",
                 Result.Error.c_str());
    std::exit(1);
  }
  return std::move(Result.ExecTrace);
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

bool writeAll(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return Out.good();
}

/// Applies one seeded mutation to \p Bytes. Twelve mutation kinds, chosen
/// and parameterised by \p Rng; always leaves at least an empty file. The
/// last three target the segmented v4 framing (trailer, footer directory,
/// segment headers) and degrade to a plain bit flip on non-v4 inputs.
void mutate(std::vector<uint8_t> &Bytes, std::mt19937_64 &Rng) {
  auto Index = [&](size_t Bound) {
    return Bound ? static_cast<size_t>(Rng() % Bound) : 0;
  };
  auto FlipBit = [&] {
    Bytes[Index(Bytes.size())] ^= uint8_t(1u << (Rng() % 8));
  };
  // The v4 footer offset when the file ends in a valid trailer, else 0.
  auto V4Footer = [&]() -> uint64_t {
    if (Bytes.size() < 56)
      return 0;
    uint32_t Magic;
    std::memcpy(&Magic, Bytes.data() + Bytes.size() - 4, 4);
    if (Magic != 0x52505445u) // "RPTE"
      return 0;
    uint64_t Off;
    std::memcpy(&Off, Bytes.data() + Bytes.size() - 24, 8);
    return Off + 32 <= Bytes.size() ? Off : 0;
  };
  if (Bytes.empty()) {
    Bytes.push_back(static_cast<uint8_t>(Rng()));
    return;
  }
  switch (Rng() % 12) {
  case 0: // Truncate to a random prefix (possibly empty).
    Bytes.resize(Index(Bytes.size() + 1));
    break;
  case 1: // Flip a single bit.
    Bytes[Index(Bytes.size())] ^= uint8_t(1u << (Rng() % 8));
    break;
  case 2: { // Flip a burst of bits across a small window.
    size_t At = Index(Bytes.size());
    size_t Len = 1 + Index(16);
    for (size_t I = At; I != Bytes.size() && I != At + Len; ++I)
      Bytes[I] ^= static_cast<uint8_t>(Rng());
    break;
  }
  case 3: // Overwrite one byte with a boundary-ish value.
    Bytes[Index(Bytes.size())] =
        static_cast<uint8_t>(std::initializer_list<int>{0, 1, 0x7f, 0x80, 0xff}
                                 .begin()[Rng() % 5]);
    break;
  case 4: { // Tamper with a section-table record field (id 16-byte header
            // plus 32-byte records: id/pad/offset/length/checksum).
    if (Bytes.size() < 48)
      break;
    size_t Record = 16 + 32 * Index((Bytes.size() - 16) / 32);
    size_t Field = (Rng() % 4) * 8; // id+pad / offset / length / checksum
    uint64_t Garbage = Rng();
    std::memcpy(Bytes.data() + Record + Field, &Garbage,
                std::min<size_t>(8, Bytes.size() - Record - Field));
    break;
  }
  case 5: { // Tamper with the header: magic, version, flags, or count.
    size_t Field = 4 * (Rng() % 4);
    if (Bytes.size() < Field + 4)
      break;
    uint32_t Garbage = static_cast<uint32_t>(Rng());
    std::memcpy(Bytes.data() + Field, &Garbage, 4);
    break;
  }
  case 6: { // Zero a range.
    size_t At = Index(Bytes.size());
    size_t Len = 1 + Index(64);
    std::memset(Bytes.data() + At, 0,
                std::min(Len, Bytes.size() - At));
    break;
  }
  case 7: { // Append garbage.
    size_t Len = 1 + Index(64);
    for (size_t I = 0; I != Len; ++I)
      Bytes.push_back(static_cast<uint8_t>(Rng()));
    break;
  }
  case 8: { // Swap two windows of the file.
    size_t A = Index(Bytes.size()), B = Index(Bytes.size());
    size_t Len = 1 + Index(32);
    for (size_t I = 0; I != Len; ++I) {
      if (A + I >= Bytes.size() || B + I >= Bytes.size())
        break;
      std::swap(Bytes[A + I], Bytes[B + I]);
    }
    break;
  }
  case 9: { // v4 trailer tamper: footer offset, checksum, count, or magic.
    if (Bytes.size() < 56) {
      FlipBit();
      break;
    }
    size_t Trailer = Bytes.size() - 24;
    size_t Field = (Rng() % 3) * 8; // offset / checksum / count+magic
    uint64_t Garbage = Rng();
    std::memcpy(Bytes.data() + Trailer + Field, &Garbage, 8);
    break;
  }
  case 10: { // v4 footer-directory record tamper.
    uint64_t Footer = V4Footer();
    if (!Footer) {
      FlipBit();
      break;
    }
    uint32_t NumSegments;
    std::memcpy(&NumSegments, Bytes.data() + Footer + 4, 4);
    size_t Records = Bytes.size() > Footer + 8
                         ? std::min<size_t>(NumSegments,
                                            (Bytes.size() - Footer - 8) / 32)
                         : 0;
    if (!Records) {
      FlipBit();
      break;
    }
    size_t Record = Footer + 8 + 32 * Index(Records);
    size_t Field = (Rng() % 4) * 8; // offset / digests / eid range
    uint64_t Garbage = Rng();
    std::memcpy(Bytes.data() + Record + Field, &Garbage, 8);
    break;
  }
  case 11: { // v4 segment-header tamper (first segment lives at byte 32).
    uint64_t Footer = V4Footer();
    if (!Footer || Footer < 64) {
      FlipBit();
      break;
    }
    // Walking the chain would need trusted PayloadBytes, so tamper the
    // first header: magic/index, begin-eid, counts, or payload size —
    // the last one derails the salvage chain scan's next-header jump.
    size_t Field = (Rng() % 4) * 8;
    uint64_t Garbage = Rng();
    std::memcpy(Bytes.data() + 32 + Field, &Garbage, 8);
    break;
  }
  }
}

/// Exercises every read surface on one mutant file. The contract under
/// test is purely "no crash, no hang, no sanitizer report": errors are
/// counted, successes are walked end to end to force column access.
void exercise(const std::string &Path, FuzzStats &Stats) {
  for (bool Salvage : {false, true}) {
    auto Strings = std::make_shared<StringInterner>();
    ReadOptions Options;
    Options.Salvage = Salvage;
    TraceReadReport Report;
    Options.Report = &Report;
    Expected<Trace> Loaded = readTrace(Path, Strings, Options);
    if (!Loaded) {
      Stats.ErrorCodes[Loaded.error().Code.empty() ? "<uncoded>"
                                                   : Loaded.error().Code]++;
      continue;
    }
    (Salvage ? Stats.SalvageOk : Stats.StrictOk)++;
    // Touch everything a reader would: render each entry, walk threads.
    const Trace &T = *Loaded;
    for (uint32_t I = 0; I != T.size(); ++I)
      (void)T.renderEntry(I);
    for (const ThreadInfo &Thread : T.Threads)
      (void)Strings->text(Thread.EntryMethod);
  }
  (void)traceFileDigest(Path);
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = 20260807;
  uint64_t Iters = 200;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--seed" && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--iters" && I + 1 < Argc)
      Iters = std::strtoull(Argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: trace_fuzz [--seed N] [--iters N]\n");
      return 2;
    }
  }

  // Base corpus: every format x a spread of trace shapes, including the
  // degenerate ones (empty, single entry).
  GeneratorOptions Small;
  Small.NumClasses = 2;
  Small.OuterIters = 3;
  Small.Seed = 7;
  GeneratorOptions Threaded;
  Threaded.NumClasses = 3;
  Threaded.OuterIters = 8;
  Threaded.NumThreads = 2;
  Threaded.Seed = 11;
  std::vector<Trace> Corpus;
  Trace Empty;
  Empty.Strings = std::make_shared<StringInterner>();
  Empty.Name = "empty";
  Corpus.push_back(std::move(Empty));
  Corpus.push_back(traceOf("class A { } main { var a = new A(); }"));
  Corpus.push_back(traceOf(generateProgram(Small)));
  Corpus.push_back(traceOf(generateProgram(Threaded)));

  std::string Dir = "/tmp/rprism_fuzz_" + std::to_string(::getpid());
  std::string Mutant = Dir + "_mutant";
  std::vector<std::vector<uint8_t>> Bases;
  for (size_t I = 0; I != Corpus.size(); ++I) {
    Corpus[I].computeFingerprints();
    std::string Path = Dir + "_base" + std::to_string(I);
    auto WriteV3Index = [](const Trace &T, const std::string &P) {
      return writeTrace(T, P, /*WithViewIndex=*/true);
    };
    auto WriteV3Plain = [](const Trace &T, const std::string &P) {
      return writeTrace(T, P, /*WithViewIndex=*/false);
    };
    auto WriteV1 = [](const Trace &T, const std::string &P) {
      return writeTraceLegacy(T, P, 1);
    };
    auto WriteV2 = [](const Trace &T, const std::string &P) {
      return writeTraceLegacy(T, P, 2);
    };
    // Segmented v4 at two granularities: many small segments stress the
    // per-segment framing, one big segment stresses the degenerate path.
    auto WriteV4Small = [](const Trace &T, const std::string &P) {
      return writeTraceSegmented(T, P, /*SegmentEntries=*/8);
    };
    auto WriteV4Big = [](const Trace &T, const std::string &P) {
      return writeTraceSegmented(T, P, /*SegmentEntries=*/100000,
                                 /*WithViewIndex=*/false);
    };
    for (auto *Write : {+WriteV3Index, +WriteV3Plain, +WriteV1, +WriteV2,
                        +WriteV4Small, +WriteV4Big}) {
      if (!Write(Corpus[I], Path)) {
        std::fprintf(stderr, "fatal: cannot write base trace %zu\n", I);
        return 1;
      }
      Bases.push_back(readAll(Path));
    }
    std::remove(Path.c_str());
  }

  std::mt19937_64 Rng(Seed);
  FuzzStats Stats;
  for (uint64_t Iter = 0; Iter != Iters; ++Iter) {
    std::vector<uint8_t> Bytes = Bases[Rng() % Bases.size()];
    // One to three stacked mutations per iteration.
    uint64_t Rounds = 1 + Rng() % 3;
    for (uint64_t R = 0; R != Rounds; ++R)
      mutate(Bytes, Rng);
    if (!writeAll(Mutant, Bytes)) {
      std::fprintf(stderr, "fatal: cannot write mutant file\n");
      return 1;
    }
    exercise(Mutant, Stats);
    Stats.Iterations++;
  }
  std::remove(Mutant.c_str());

  std::printf("trace_fuzz: %llu iterations over %zu base files (seed %llu)\n",
              static_cast<unsigned long long>(Stats.Iterations), Bases.size(),
              static_cast<unsigned long long>(Seed));
  std::printf("  strict reads ok:  %llu\n",
              static_cast<unsigned long long>(Stats.StrictOk));
  std::printf("  salvage reads ok: %llu\n",
              static_cast<unsigned long long>(Stats.SalvageOk));
  std::printf("  error codes seen:\n");
  for (const auto &KV : Stats.ErrorCodes)
    std::printf("    %-24s %llu\n", KV.first.c_str(),
                static_cast<unsigned long long>(KV.second));
  return 0;
}
