//===- tools/metrics_diff.cpp - `rprism metrics-diff` subcommand ----------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI perf-regression gate: compares a fresh `rprism-metrics-v1`
/// document against a checked-in baseline and exits 5 when any gated
/// metric grew beyond its tolerance band. Kept out of rprism.cpp because
/// its flag grammar (`--tolerance PAT=PCT`) differs from the shared
/// subcommand parser.
///
//===----------------------------------------------------------------------===//

#include "MetricsDiffMain.h"

#include "support/Expected.h"
#include "support/MetricsDiff.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace rprism;

namespace {

/// Exit code 5 is reserved for "the comparison ran and found a
/// regression" — distinct from every failure-to-compare code so CI can
/// tell "slower" from "broken".
constexpr int kExitRegressed = 5;

int usage() {
  std::fprintf(
      stderr,
      "usage: rprism metrics-diff <baseline.json> <current.json> [flags]\n"
      "\n"
      "  --tolerance PAT=PCT    per-metric band; PAT is a metric name with\n"
      "                         an optional trailing '*' (first match wins);\n"
      "                         a negative PCT skips matching metrics\n"
      "  --counter-tolerance P  default band for counters (default 0)\n"
      "  --gauge-tolerance P    default band for gauges (default: skip)\n"
      "  --wall-tolerance P     default band for wall_ns (default: skip)\n"
      "  --two-sided            also fail decreases beyond the band\n"
      "  --fail-on-missing      fail when a baseline metric disappeared\n"
      "  --quiet                suppress the comparison table\n"
      "\n"
      "exit codes: 0 within tolerance, 5 regression, 2 usage error,\n"
      "            3 corrupt/mismatched metrics JSON, 4 I/O error\n");
  return 2;
}

int exitCodeFor(const Err &E) {
  switch (E.Class) {
  case ErrClass::Usage:
    return 2;
  case ErrClass::Corrupt:
    return 3;
  case ErrClass::Io:
    return 4;
  default:
    return 1;
  }
}

Expected<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeClassErr(ErrClass::Io, "file.open",
                        "cannot open '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Parses "PCT" as a double; false on garbage.
bool parsePct(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End == Text.c_str() + Text.size();
}

} // namespace

int rprism::metricsDiffMain(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  MetricsDiffOptions Options;
  bool Quiet = false;

  for (size_t I = 0; I != Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto takeValue = [&](const char *Flag, std::string &Out) {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return false;
      }
      Out = Args[++I];
      return true;
    };
    if (Arg == "--tolerance") {
      std::string Spec;
      if (!takeValue("--tolerance", Spec))
        return usage();
      size_t Eq = Spec.rfind('=');
      double Pct;
      if (Eq == std::string::npos || Eq == 0 ||
          !parsePct(Spec.substr(Eq + 1), Pct)) {
        std::fprintf(stderr,
                     "error: --tolerance wants PAT=PCT, got '%s'\n",
                     Spec.c_str());
        return usage();
      }
      Options.Rules.push_back({Spec.substr(0, Eq), Pct});
    } else if (Arg == "--counter-tolerance" || Arg == "--gauge-tolerance" ||
               Arg == "--wall-tolerance") {
      std::string Value;
      if (!takeValue(Arg.c_str(), Value))
        return usage();
      double Pct;
      if (!parsePct(Value, Pct)) {
        std::fprintf(stderr, "error: %s wants a number, got '%s'\n",
                     Arg.c_str(), Value.c_str());
        return usage();
      }
      (Arg == "--counter-tolerance"
           ? Options.CounterTolerancePct
           : Arg == "--gauge-tolerance" ? Options.GaugeTolerancePct
                                        : Options.WallTolerancePct) = Pct;
    } else if (Arg == "--two-sided") {
      Options.TwoSided = true;
    } else if (Arg == "--fail-on-missing") {
      Options.FailOnMissing = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage();
    } else {
      Paths.push_back(Arg);
    }
  }

  if (Paths.size() != 2)
    return usage();

  Expected<std::string> Baseline = readFile(Paths[0]);
  if (!Baseline) {
    std::fprintf(stderr, "error: %s\n", Baseline.error().render().c_str());
    return exitCodeFor(Baseline.error());
  }
  Expected<std::string> Current = readFile(Paths[1]);
  if (!Current) {
    std::fprintf(stderr, "error: %s\n", Current.error().render().c_str());
    return exitCodeFor(Current.error());
  }

  Expected<MetricsDiffResult> Result =
      diffMetricsJson(*Baseline, *Current, Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.error().render().c_str());
    return exitCodeFor(Result.error());
  }

  if (!Quiet)
    std::fputs(Result->render().c_str(), stderr);
  return Result->regressed() ? kExitRegressed : 0;
}
