//===- tools/MetricsDiffMain.h - `rprism metrics-diff` entry point --------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//

#ifndef RPRISM_TOOLS_METRICSDIFFMAIN_H
#define RPRISM_TOOLS_METRICSDIFFMAIN_H

#include <string>
#include <vector>

namespace rprism {

/// Runs `rprism metrics-diff <baseline.json> <current.json> [flags]`.
/// \p Args is everything after the subcommand name. Exit codes follow
/// the rprism contract plus code 5 for a perf regression.
int metricsDiffMain(const std::vector<std::string> &Args);

} // namespace rprism

#endif // RPRISM_TOOLS_METRICSDIFFMAIN_H
