//===- examples/trace_inspect.cpp - Offline traces: serialize & reload ----===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RPRISM collects traces online and analyzes them offline: "once a trace
/// segment has finished executing, all trace data is offloaded to disk"
/// (§5). This example runs a program, writes the trace in segments,
/// reloads it into a fresh interner, verifies the round trip, and dumps a
/// readable excerpt. Differencing works identically on reloaded traces.
///
//===----------------------------------------------------------------------===//

#include "diff/ViewsDiff.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "trace/Serialize.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace rprism;

static const char *Subject = R"(
  class Ring {
    Int slots;
    Int hand;
    Ring(Int slots) { this.slots = slots; this.hand = 0; }
    Int advance(Int by) {
      this.hand = (this.hand + by) % this.slots;
      return this.hand;
    }
  }
  main {
    var r = new Ring(7);
    var i = 0;
    while (i < 25) {
      r.advance(i * 3);
      i = i + 1;
    }
    print(r.hand);
  }
)";

int main() {
  auto Prog = compileSource(Subject);
  if (!Prog) {
    std::fprintf(stderr, "compile error: %s\n",
                 Prog.error().render().c_str());
    return 1;
  }
  RunOptions Options;
  Options.TraceName = "ring";
  RunResult Run = runProgram(*Prog, Options);
  std::printf("traced %zu entries\n", Run.ExecTrace.size());

  // Offload in segments of 64 entries (tracing-memory bound in RPRISM).
  const char *Base = "/tmp/rprism_trace_inspect";
  unsigned Segments = writeTraceSegments(Run.ExecTrace, Base, 64);
  if (Segments == 0) {
    std::fprintf(stderr, "error: could not write trace segments\n");
    return 1;
  }
  std::printf("offloaded as %u segment file(s) under %s.seg*\n", Segments,
              Base);

  // Offline reload, into a *fresh* interner (as a separate analysis
  // process would).
  Expected<Trace> Reloaded =
      readTraceSegments(Base, Segments, std::make_shared<StringInterner>());
  if (!Reloaded) {
    std::fprintf(stderr, "error: %s\n", Reloaded.error().render().c_str());
    return 1;
  }
  std::printf("reloaded %zu entries\n", Reloaded->size());

  // The round trip is lossless up to event equality: a views diff of the
  // live trace against the reloaded one finds nothing.
  DiffResult Diff = viewsDiff(Run.ExecTrace, *Reloaded);
  std::printf("live-vs-reloaded semantic differences: %llu\n\n",
              static_cast<unsigned long long>(Diff.numDiffs()));

  // Readable dump (first entries).
  std::string Dump = dumpTrace(*Reloaded);
  size_t Shown = 0;
  size_t Pos = 0;
  while (Shown < 14 && Pos < Dump.size()) {
    size_t End = Dump.find('\n', Pos);
    if (End == std::string::npos)
      break;
    std::cout << Dump.substr(Pos, End - Pos + 1);
    Pos = End + 1;
    ++Shown;
  }
  std::printf("  ... (%zu more lines)\n", Reloaded->size() - Shown + 1);
  return 0;
}
