//===- examples/protocol_check.cpp - Typestate drift across versions ------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4 lists "object protocol inference" and "property checking (e.g.,
/// typestate)" among the analyses the views abstraction enables. This
/// example mines a connection protocol from a known-good run and checks a
/// refactored version against it: the refactor accidentally issues a
/// query before authentication — a typestate violation the protocol
/// checker pinpoints, with the exact trace entry.
///
//===----------------------------------------------------------------------===//

#include "analysis/Impact.h"
#include "analysis/Protocol.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

static const char *GoodVersion = R"(
  class Conn {
    Int state;
    Int queries;
    Conn() { this.state = 0; this.queries = 0; }
    Unit connect() { this.state = 1; return unit; }
    Unit auth(Str user) { this.state = 2; return unit; }
    Int query(Str q) {
      this.queries = this.queries + 1;
      return len(q) * this.queries;
    }
    Unit disconnect() { this.state = 0; return unit; }
  }
  class Session {
    Conn c;
    Session(Conn c) { this.c = c; }
    Unit run() {
      this.c.connect();
      this.c.auth("admin");
      print(this.c.query("select 1"));
      print(this.c.query("select 2"));
      this.c.disconnect();
      return unit;
    }
  }
  main {
    var s1 = new Session(new Conn());
    s1.run();
    var s2 = new Session(new Conn());
    s2.run();
  }
)";

static const char *RefactoredVersion = R"(
  class Conn {
    Int state;
    Int queries;
    Conn() { this.state = 0; this.queries = 0; }
    Unit connect() { this.state = 1; return unit; }
    Unit auth(Str user) { this.state = 2; return unit; }
    Int query(Str q) {
      this.queries = this.queries + 1;
      return len(q) * this.queries;
    }
    Unit disconnect() { this.state = 0; return unit; }
  }
  class Session {
    Conn c;
    Session(Conn c) { this.c = c; }
    Unit warmup() {
      // Refactor bug: the cache-warming query runs before auth.
      print(this.c.query("select warm"));
      return unit;
    }
    Unit run() {
      this.c.connect();
      this.warmup();
      this.c.auth("admin");
      print(this.c.query("select 1"));
      this.c.disconnect();
      return unit;
    }
  }
  main {
    var s1 = new Session(new Conn());
    s1.run();
  }
)";

int main() {
  auto Strings = std::make_shared<StringInterner>();
  auto Good = compileSource(GoodVersion, Strings);
  auto Bad = compileSource(RefactoredVersion, Strings);
  if (!Good || !Bad) {
    std::fprintf(stderr, "compile error\n");
    return 1;
  }

  Trace GoodTrace = runProgram(*Good).ExecTrace;
  Trace BadTrace = runProgram(*Bad).ExecTrace;

  // 1. Mine the protocol from the known-good version.
  ViewWeb GoodWeb(GoodTrace);
  std::vector<ProtocolAutomaton> Protocols = inferProtocols(GoodWeb);
  std::printf("protocols mined from the good run:\n\n");
  for (const ProtocolAutomaton &Auto : Protocols)
    std::cout << Auto.render(*Strings) << '\n';

  // 2. Check the refactored version against it.
  ViewWeb BadWeb(BadTrace);
  std::vector<ProtocolViolation> Violations =
      checkProtocols(Protocols, BadWeb);
  std::cout << renderViolations(Violations, BadTrace);

  // 3. Impact: what does the violating call interact with?
  if (!Violations.empty()) {
    ImpactSet Impact = impactOfEntries(BadWeb, {Violations.front().Eid});
    std::printf("\n%s", Impact.render(BadTrace).c_str());
  }
  return 0;
}
