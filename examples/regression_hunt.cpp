//===- examples/regression_hunt.cpp - Full §4 regression cause analysis ---===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the complete regression-cause workflow of §4 on the
/// paper's motivating example (Fig. 1):
///
///   1. run the original and new versions on the regressing input and on
///      a similar non-regressing input (four traces);
///   2. compute the three diffs — suspected (A), expected (B), and
///      regression (C) differences;
///   3. derive the candidate set D = (A - B) ∩ C and print the suspected
///      causes with full dynamic context.
///
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

int main() {
  BenchmarkCase Case = motivatingCase();
  std::printf("case: %s\n%s\n\n", Case.Name.c_str(),
              Case.Description.c_str());

  // Step 1: trace the four version x input combinations.
  Expected<PreparedCase> Prepared = prepareCase(Case);
  if (!Prepared) {
    std::fprintf(stderr, "error: %s\n", Prepared.error().render().c_str());
    return 1;
  }
  std::printf("step 1 — tracing (%.2fs):\n", Prepared->TracingSeconds);
  std::printf("  orig/ok   : %6zu entries  output ok\n",
              Prepared->OrigOk.size());
  std::printf("  orig/regr : %6zu entries  output CORRECT\n",
              Prepared->OrigRegr.size());
  std::printf("  new/ok    : %6zu entries  output ok (same as orig)\n",
              Prepared->NewOk.size());
  std::printf("  new/regr  : %6zu entries  output WRONG\n\n",
              Prepared->NewRegr.size());
  if (!Prepared->exhibitsRegression()) {
    std::fprintf(stderr, "unexpected: the case exhibits no regression\n");
    return 1;
  }

  // Steps 2-3: the three diffs and the set algebra.
  RegressionReport Report = analyzeRegression(Prepared->inputs());
  std::printf("step 2 — differencing:\n");
  std::printf("  A (orig/regr vs new/regr): %llu differences, %zu "
              "sequences\n",
              static_cast<unsigned long long>(Report.sizeA),
              Report.A.Sequences.size());
  std::printf("  B (orig/ok   vs new/ok)  : %llu differences\n",
              static_cast<unsigned long long>(Report.sizeB));
  std::printf("  C (new/ok    vs new/regr): %llu differences\n\n",
              static_cast<unsigned long long>(Report.sizeC));

  std::printf("step 3 — candidate set D = (A - B) ∩ C: %llu differences "
              "in %zu sequence(s)\n\n",
              static_cast<unsigned long long>(Report.sizeD),
              Report.RegressionSequences.size());

  std::cout << Report.render(/*MaxSequences=*/3, /*MaxEntries=*/14);

  std::printf("\nthe first candidate shows the wrong constructor range "
              "([1..127] instead of [32..127]) flowing into the extracted "
              "BinaryCharFilter — the MYFACES-1130 root cause.\n");
  return 0;
}
