//===- examples/view_explorer.cpp - Navigating the web of views -----------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the views trace abstraction of §2.4 on a multithreaded
/// producer/consumer program: builds the web of views, prints the Fig. 2
/// style boxes (thread view, method view, target-object view), and
/// navigates an individual entry through every view that links it.
///
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"
#include "runtime/Vm.h"
#include "views/Views.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

static const char *Producer = R"(
  class Queue {
    Int depth;
    Int pushed;
    Int popped;
    Queue() { this.depth = 0; this.pushed = 0; this.popped = 0; }
    Unit push(Int v) {
      this.depth = this.depth + 1;
      this.pushed = this.pushed + v;
      return unit;
    }
    Int pop() {
      if (this.depth == 0) { return -1; }
      this.depth = this.depth - 1;
      this.popped = this.popped + 1;
      return this.popped;
    }
  }
  class Producer {
    Queue q;
    Producer(Queue q) { this.q = q; }
    Unit produce() {
      var i = 0;
      while (i < 4) { this.q.push(i * 10); i = i + 1; }
      return unit;
    }
  }
  class Consumer {
    Queue q;
    Int seen;
    Consumer(Queue q) { this.q = q; this.seen = 0; }
    Unit consume() {
      var i = 0;
      while (i < 4) {
        var v = this.q.pop();
        if (v >= 0) { this.seen = this.seen + 1; }
        i = i + 1;
      }
      return unit;
    }
  }
  main {
    var q = new Queue();
    var p = new Producer(q);
    var c = new Consumer(q);
    spawn p.produce();
    spawn c.consume();
    var warm = q.pop();
    print(q.depth);
  }
)";

int main() {
  auto Prog = compileSource(Producer);
  if (!Prog) {
    std::fprintf(stderr, "compile error: %s\n",
                 Prog.error().render().c_str());
    return 1;
  }
  RunResult Run = runProgram(*Prog);
  const Trace &T = Run.ExecTrace;
  std::printf("trace: %zu entries across %zu threads\n\n", T.size(),
              T.Threads.size());

  // The web of views (built in one pass over the trace).
  ViewWeb Web(T);
  std::printf("views: %zu total — %zu thread, %zu method, %zu "
              "target-object, %zu active-object\n\n",
              Web.numViews(), Web.numThreadViews(), Web.numMethodViews(),
              Web.numTargetObjectViews(), Web.numActiveObjectViews());

  // Fig. 2's boxes: one thread view, one method view, one object view.
  if (const View *TV = Web.threadView(1))
    std::cout << Web.render(*TV, 12) << '\n';
  if (const View *MV = Web.methodView(T.Strings->intern("Queue.push")))
    std::cout << Web.render(*MV, 12) << '\n';

  // The first Queue instance's target-object view: every event on q,
  // regardless of which thread performed it.
  for (const View &V : Web.views()) {
    if (V.Type != ViewType::TargetObject)
      continue;
    if (T.Strings->text(V.FirstRepr.ClassName) != "Queue")
      continue;
    std::cout << Web.render(V, 16) << '\n';

    // Navigation: take the view's third entry and list every view that
    // links it — the "web" the paper describes.
    if (V.Entries.size() > 2) {
      uint32_t Eid = V.Entries[2];
      std::printf("entry [%u] %s\nis linked into:\n", Eid,
                  T.renderEntry(Eid).c_str());
      for (uint32_t ViewId : Web.viewsOf(Eid)) {
        const View &Linked = Web.view(ViewId);
        std::printf("  - %s view (position %lld of %zu)\n",
                    viewTypeName(Linked.Type),
                    static_cast<long long>(
                        ViewWeb::positionOf(Linked, Eid)),
                    Linked.size());
      }
    }
    break;
  }
  return 0;
}
