//===- examples/quickstart.cpp - RPrism/C++ in ~60 lines ------------------===//
//
// Part of the RPrism/C++ reproduction of "Semantics-Aware Trace Analysis"
// (Hoffman, Eugster, Jagannathan; PLDI 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the library: compile two versions of a
/// tiny program, run them to collect execution traces, and print their
/// semantic diff. Build and run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "diff/ViewsDiff.h"
#include "runtime/Compiler.h"
#include "runtime/Vm.h"

#include <cstdio>
#include <iostream>

using namespace rprism;

/// Version 1: the accumulator applies a 10% bonus above the threshold.
static const char *VersionOne = R"(
  class Account {
    Int balance;
    Account(Int opening) { this.balance = opening; }
    Unit deposit(Int amount) {
      this.balance = this.balance + amount;
      if (amount > 100) {
        this.balance = this.balance + amount / 10;
      }
      return unit;
    }
  }
  main {
    var acct = new Account(50);
    acct.deposit(40);
    acct.deposit(200);
    print(acct.balance);
  }
)";

/// Version 2: a refactor accidentally changed the bonus threshold.
static const char *VersionTwo = R"(
  class Account {
    Int balance;
    Account(Int opening) { this.balance = opening; }
    Unit deposit(Int amount) {
      this.balance = this.balance + amount;
      if (amount > 1000) {
        this.balance = this.balance + amount / 10;
      }
      return unit;
    }
  }
  main {
    var acct = new Account(50);
    acct.deposit(40);
    acct.deposit(200);
    print(acct.balance);
  }
)";

int main() {
  // One interner shared by both versions: symbols compare across traces.
  auto Strings = std::make_shared<StringInterner>();

  Expected<CompiledProgram> Old = compileSource(VersionOne, Strings);
  Expected<CompiledProgram> New = compileSource(VersionTwo, Strings);
  if (!Old || !New) {
    std::fprintf(stderr, "compile error: %s\n",
                 (!Old ? Old.error() : New.error()).render().c_str());
    return 1;
  }

  // Running a program yields its observable output and the execution
  // trace (the entry stream of the paper's Fig. 4 grammar).
  RunResult OldRun = runProgram(*Old);
  RunResult NewRun = runProgram(*New);
  std::printf("old output: %s", OldRun.Output.c_str());
  std::printf("new output: %s", NewRun.Output.c_str());
  std::printf("old trace: %zu entries; new trace: %zu entries\n\n",
               OldRun.ExecTrace.size(), NewRun.ExecTrace.size());

  // The views-based semantic diff.
  DiffResult Diff = viewsDiff(OldRun.ExecTrace, NewRun.ExecTrace);
  std::cout << Diff.render();

  std::printf("\n(the diff pinpoints the balance updates the missing "
              "bonus caused, with full dynamic state)\n");
  return 0;
}
